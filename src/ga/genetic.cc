/**
 * @file
 * Genetic algorithm implementation.
 */

#include "ga/genetic.hh"

#include <algorithm>
#include <cstring>

#include "ga/breeding.hh"
#include "ga/ga_checkpoint.hh"
#include "ga/random_search.hh"
#include "util/check.hh"
#include "util/log.hh"
#include "util/stats.hh"

namespace gippr
{

namespace
{

/**
 * Digest of every parameter that shapes an evolveIpv run's results.
 * threads is deliberately excluded (the batched evaluation is
 * value-identical across thread counts); batch width and memo
 * capacity are included conservatively so a resumed run replays the
 * exact evaluation schedule of the interrupted one.
 */
uint64_t
evolveConfigDigest(const GaParams &params, IpvFamily family,
                   const FitnessEvaluator &fitness)
{
    uint64_t d = kDigestBasis;
    d = digestMix(d, 0x65766f6cULL); // "evol" tag
    d = digestMix(d, static_cast<uint64_t>(family));
    d = digestMix(d, params.seed);
    d = digestMix(d, params.initialPopulation);
    d = digestMix(d, params.population);
    d = digestMix(d, params.generations);
    uint64_t rate_bits;
    static_assert(sizeof(rate_bits) == sizeof(params.mutationRate));
    std::memcpy(&rate_bits, &params.mutationRate, sizeof(rate_bits));
    d = digestMix(d, rate_bits);
    d = digestMix(d, params.elites);
    d = digestMix(d, params.tournament);
    for (const Ipv &seed_ipv : params.seedIpvs)
        for (uint8_t e : seed_ipv.entries())
            d = digestMix(d, e);
    d = digestMix(d, fitness.batchWidth());
    d = digestMix(d, fitness.memoCapacity());
    return d;
}

} // namespace

GaResult
evolveIpv(const FitnessEvaluator &fitness, IpvFamily family,
          const GaParams &params)
{
    const unsigned ways = familyArity(family, fitness.llc());
    Rng rng(params.seed);

    const robust::CheckpointOptions &ckpt = params.checkpoint;
    const uint64_t config_digest =
        ckpt.enabled() ? evolveConfigDigest(params, family, fitness)
                       : 0;

    GaResult result;
    std::vector<SampledIpv> pop;
    unsigned done = 0; // generations completed after generation zero

    // A checkpoint captures the full generation-boundary state, so
    // restoring it and continuing is bit-identical to never having
    // stopped: the RNG stream, the sorted population (with carried
    // fitness) and the convergence history all pick up exactly where
    // the interrupted run left them.
    const auto save = [&](unsigned completed) {
        GaCheckpoint ck;
        ck.configDigest = config_digest;
        ck.suiteDigest = fitness.traceSetDigest();
        ck.rngState = rng.state();
        ck.generation = completed;
        ck.population = pop;
        ck.history = result.history;
        ck.generationSeconds = result.generationSeconds;
        saveGaCheckpoint(ckpt.path, ck);
    };

    bool resumed = false;
    if (ckpt.enabled() && ckpt.resume &&
        robust::checkpointExists(ckpt.path)) {
        GaCheckpoint ck = loadGaCheckpoint(ckpt.path, config_digest,
                                           fitness.traceSetDigest());
        rng.setState(ck.rngState);
        pop = std::move(ck.population);
        result.history = std::move(ck.history);
        result.generationSeconds = std::move(ck.generationSeconds);
        done = static_cast<unsigned>(ck.generation);
        result.resumedGenerations = done;
        resumed = true;
        inform("resumed GA run from " + ckpt.path + " at generation " +
               std::to_string(done) + "/" +
               std::to_string(params.generations));
    }

    if (!resumed) {
        // Generation zero: random individuals plus provided seeds.
        pop.reserve(params.initialPopulation + params.seedIpvs.size());
        for (const Ipv &seed_ipv : params.seedIpvs)
            pop.push_back({seed_ipv, 0.0});
        while (pop.size() < params.initialPopulation)
            pop.push_back({randomIpv(ways, rng), 0.0});
        double gen0_seconds = evaluatePopulation(
            fitness, family, pop, 0, params.threads, params.timings);
        sortByFitnessDesc(pop);

        result.history.push_back(pop.front().fitness);
        result.generationSeconds.push_back(gen0_seconds);
        if (params.progress) {
            params.progress->onProgress({"evolve", 0,
                                         params.generations + 1,
                                         pop.front().fitness,
                                         gen0_seconds});
        }
        if (ckpt.enabled())
            save(0);
    }

    for (unsigned g = done; g < params.generations; ++g) {
        if (ckpt.stopRequested()) {
            if (ckpt.enabled())
                save(g);
            result.interrupted = true;
            inform("GA run interrupted at generation " +
                   std::to_string(g) + "/" +
                   std::to_string(params.generations) +
                   (ckpt.enabled() ? "; checkpoint saved to " +
                                         ckpt.path
                                   : ""));
            break;
        }
        std::vector<SampledIpv> next;
        next.reserve(params.population);
        const size_t elites = std::min(params.elites, pop.size());
        for (size_t e = 0; e < elites; ++e)
            next.push_back(pop[e]);
        while (next.size() < params.population) {
            const SampledIpv &pa =
                selectParent(pop, params.tournament, rng);
            const SampledIpv &pb =
                selectParent(pop, params.tournament, rng);
            Ipv child = mutate(crossover(pa.ipv, pb.ipv, rng),
                               params.mutationRate, ways, rng);
            next.push_back({std::move(child), 0.0});
        }
        // Elites carry their fitness from the previous generation —
        // the replay is deterministic, so re-evaluating them could
        // only reproduce the same value.  Children start at the elite
        // cutoff.
        double gen_seconds =
            evaluatePopulation(fitness, family, next, elites,
                               params.threads, params.timings);
#if GIPPR_CHECKS_ENABLED
        // The memoized fitness function must agree exactly with the
        // value each elite carried in.
        for (size_t e = 0; e < elites; ++e) {
            GIPPR_CHECK(fitness.evaluate(next[e].ipv, family) ==
                        next[e].fitness);
        }
#endif
        sortByFitnessDesc(next);
        pop = std::move(next);
        result.history.push_back(pop.front().fitness);
        result.generationSeconds.push_back(gen_seconds);
        if (params.progress) {
            params.progress->onProgress({"evolve", g + 1,
                                         params.generations + 1,
                                         pop.front().fitness,
                                         gen_seconds});
        }
        if (ckpt.enabled() && ((g + 1) % std::max(1u, ckpt.every) == 0 ||
                               g + 1 == params.generations)) {
            save(g + 1);
        }
    }

    result.best = pop.front().ipv;
    result.bestFitness = pop.front().fitness;
    result.finalPopulation = std::move(pop);
    return result;
}

std::vector<Ipv>
selectDuelSet(const FitnessEvaluator &fitness, IpvFamily family,
              const std::vector<Ipv> &candidates, size_t n)
{
    if (candidates.empty())
        fatal("selectDuelSet: no candidate vectors");
    // Per-candidate, per-trace speedups in one batched call:
    // candidates drawn from the final population (or seeded into
    // generation zero) come straight out of the memo cache instead of
    // paying a full re-replay each.
    const std::vector<std::vector<double>> speedups =
        fitness.perTraceSpeedupsAll(candidates, family);

    const size_t traces = fitness.traceCount();
    std::vector<size_t> chosen;
    std::vector<bool> used(candidates.size(), false);
    std::vector<double> best_per_trace(traces, 0.0);

    while (chosen.size() < std::min(n, candidates.size())) {
        double best_gain = -1.0;
        size_t best_idx = 0;
        for (size_t c = 0; c < candidates.size(); ++c) {
            if (used[c])
                continue;
            double total = 0.0;
            for (size_t t = 0; t < traces; ++t)
                total += std::max(best_per_trace[t], speedups[c][t]);
            if (total > best_gain) {
                best_gain = total;
                best_idx = c;
            }
        }
        used[best_idx] = true;
        chosen.push_back(best_idx);
        for (size_t t = 0; t < traces; ++t)
            best_per_trace[t] =
                std::max(best_per_trace[t], speedups[best_idx][t]);
    }

    std::vector<Ipv> out;
    out.reserve(chosen.size());
    for (size_t idx : chosen)
        out.push_back(candidates[idx]);
    // If asked for more vectors than candidates, pad with the best.
    while (out.size() < n)
        out.push_back(out.front());
    return out;
}

} // namespace gippr
