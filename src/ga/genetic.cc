/**
 * @file
 * Genetic algorithm implementation.
 */

#include "ga/genetic.hh"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

#include "ga/random_search.hh"
#include "util/log.hh"
#include "util/stats.hh"

namespace gippr
{

namespace
{

/** Evaluate a population in parallel. */
void
evaluateAll(const FitnessEvaluator &fitness, IpvFamily family,
            std::vector<SampledIpv> &pop, unsigned threads)
{
    std::atomic<size_t> cursor{0};
    auto worker = [&]() {
        for (;;) {
            size_t i = cursor.fetch_add(1);
            if (i >= pop.size())
                return;
            pop[i].fitness = fitness.evaluate(pop[i].ipv, family);
        }
    };
    if (threads <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
}

void
sortByFitnessDesc(std::vector<SampledIpv> &pop)
{
    std::sort(pop.begin(), pop.end(),
              [](const SampledIpv &a, const SampledIpv &b) {
                  return a.fitness > b.fitness;
              });
}

/** Tournament selection: best of @p t random individuals. */
const SampledIpv &
selectParent(const std::vector<SampledIpv> &pop, unsigned t, Rng &rng)
{
    const SampledIpv *best = &pop[rng.nextBounded(pop.size())];
    for (unsigned i = 1; i < t; ++i) {
        const SampledIpv &cand = pop[rng.nextBounded(pop.size())];
        if (cand.fitness > best->fitness)
            best = &cand;
    }
    return *best;
}

/** Single-point crossover (paper: elements 0..k of one parent). */
Ipv
crossover(const Ipv &a, const Ipv &b, Rng &rng)
{
    const auto &ea = a.entries();
    const auto &eb = b.entries();
    assert(ea.size() == eb.size());
    size_t cut = 1 + rng.nextBounded(ea.size() - 1);
    std::vector<uint8_t> child(ea.begin(),
                               ea.begin() + static_cast<long>(cut));
    child.insert(child.end(), eb.begin() + static_cast<long>(cut),
                 eb.end());
    return Ipv(std::move(child));
}

/** With probability rate, replace one random element. */
Ipv
mutate(Ipv v, double rate, unsigned ways, Rng &rng)
{
    if (!rng.nextBool(rate))
        return v;
    std::vector<uint8_t> entries = v.entries();
    size_t idx = rng.nextBounded(entries.size());
    entries[idx] = static_cast<uint8_t>(rng.nextBounded(ways));
    return Ipv(std::move(entries));
}

} // namespace

GaResult
evolveIpv(const FitnessEvaluator &fitness, IpvFamily family,
          const GaParams &params)
{
    const unsigned ways = familyArity(family, fitness.llc());
    Rng rng(params.seed);

    // Generation zero: random individuals plus any provided seeds.
    std::vector<SampledIpv> pop;
    pop.reserve(params.initialPopulation + params.seedIpvs.size());
    for (const Ipv &seed_ipv : params.seedIpvs)
        pop.push_back({seed_ipv, 0.0});
    while (pop.size() < params.initialPopulation)
        pop.push_back({randomIpv(ways, rng), 0.0});
    evaluateAll(fitness, family, pop, params.threads);
    sortByFitnessDesc(pop);

    GaResult result;
    result.history.push_back(pop.front().fitness);

    for (unsigned g = 0; g < params.generations; ++g) {
        std::vector<SampledIpv> next;
        next.reserve(params.population);
        const size_t elites = std::min(params.elites, pop.size());
        for (size_t e = 0; e < elites; ++e)
            next.push_back(pop[e]);
        while (next.size() < params.population) {
            const SampledIpv &pa =
                selectParent(pop, params.tournament, rng);
            const SampledIpv &pb =
                selectParent(pop, params.tournament, rng);
            Ipv child = mutate(crossover(pa.ipv, pb.ipv, rng),
                               params.mutationRate, ways, rng);
            next.push_back({std::move(child), 0.0});
        }
        evaluateAll(fitness, family, next, params.threads);
        sortByFitnessDesc(next);
        pop = std::move(next);
        result.history.push_back(pop.front().fitness);
    }

    result.best = pop.front().ipv;
    result.bestFitness = pop.front().fitness;
    result.finalPopulation = std::move(pop);
    return result;
}

std::vector<Ipv>
selectDuelSet(const FitnessEvaluator &fitness, IpvFamily family,
              const std::vector<Ipv> &candidates, size_t n)
{
    if (candidates.empty())
        fatal("selectDuelSet: no candidate vectors");
    // Per-candidate, per-trace speedups.
    std::vector<std::vector<double>> speedups;
    speedups.reserve(candidates.size());
    for (const Ipv &c : candidates)
        speedups.push_back(fitness.perTraceSpeedups(c, family));

    const size_t traces = fitness.traceCount();
    std::vector<size_t> chosen;
    std::vector<bool> used(candidates.size(), false);
    std::vector<double> best_per_trace(traces, 0.0);

    while (chosen.size() < std::min(n, candidates.size())) {
        double best_gain = -1.0;
        size_t best_idx = 0;
        for (size_t c = 0; c < candidates.size(); ++c) {
            if (used[c])
                continue;
            double total = 0.0;
            for (size_t t = 0; t < traces; ++t)
                total += std::max(best_per_trace[t], speedups[c][t]);
            if (total > best_gain) {
                best_gain = total;
                best_idx = c;
            }
        }
        used[best_idx] = true;
        chosen.push_back(best_idx);
        for (size_t t = 0; t < traces; ++t)
            best_per_trace[t] =
                std::max(best_per_trace[t], speedups[best_idx][t]);
    }

    std::vector<Ipv> out;
    out.reserve(chosen.size());
    for (size_t idx : chosen)
        out.push_back(candidates[idx]);
    // If asked for more vectors than candidates, pad with the best.
    while (out.size() < n)
        out.push_back(out.front());
    return out;
}

} // namespace gippr
