/**
 * @file
 * Cross-validation implementation.
 */

#include "ga/crossval.hh"

#include "util/log.hh"

namespace gippr
{

namespace
{

/** Flatten a list of workloads' traces, optionally skipping one. */
std::vector<FitnessTrace>
flattenExcept(const std::vector<WorkloadTraces> &workloads,
              const std::string &skip)
{
    std::vector<FitnessTrace> out;
    for (const auto &w : workloads) {
        if (w.name == skip)
            continue;
        out.insert(out.end(), w.traces.begin(), w.traces.end());
    }
    return out;
}

/**
 * Run one GA fold and pick a duel set from its final population.
 *
 * Both stages share the fold's FitnessEvaluator, so the batched
 * evaluations inside evolveIpv warm its memo cache and the duel-set
 * candidates (drawn from the final population) are scored without a
 * single extra replay.
 */
std::vector<Ipv>
evolveAndSelect(const FitnessEvaluator &fitness, IpvFamily family,
                size_t n_vectors, const GaParams &params)
{
    GaResult ga = evolveIpv(fitness, family, params);
    if (n_vectors <= 1)
        return {ga.best};
    // Consider the top of the final population as the vector farm.
    std::vector<Ipv> candidates;
    size_t pool = std::min<size_t>(ga.finalPopulation.size(), 24);
    candidates.reserve(pool);
    for (size_t i = 0; i < pool; ++i)
        candidates.push_back(ga.finalPopulation[i].ipv);
    return selectDuelSet(fitness, family, candidates, n_vectors);
}

} // namespace

std::vector<Ipv>
evolveWi(const CacheConfig &llc,
         const std::vector<WorkloadTraces> &workloads, IpvFamily family,
         size_t n_vectors, const GaParams &params)
{
    if (workloads.empty())
        fatal("evolveWi: no workloads");
    FitnessEvaluator fitness(llc, flattenExcept(workloads, ""), {});
    return evolveAndSelect(fitness, family, n_vectors, params);
}

Wn1Vectors
evolveWn1(const CacheConfig &llc,
          const std::vector<WorkloadTraces> &workloads, IpvFamily family,
          size_t n_vectors, const GaParams &params)
{
    if (workloads.size() < 2)
        fatal("evolveWn1 needs at least two workloads");
    Wn1Vectors out;
    unsigned fold = 0;
    for (const auto &held_out : workloads) {
        FitnessEvaluator fitness(
            llc, flattenExcept(workloads, held_out.name), {});
        GaParams fold_params = params;
        fold_params.seed = params.seed + 0x9e37 * (fold + 1);
        out[held_out.name] =
            evolveAndSelect(fitness, family, n_vectors, fold_params);
        inform("WN1 fold complete: " + held_out.name);
        ++fold;
    }
    return out;
}

} // namespace gippr
