/**
 * @file
 * Cross-validation implementation.
 */

#include "ga/crossval.hh"

#include <cctype>
#include <cstring>

#include "ga/ga_checkpoint.hh"
#include "util/log.hh"

namespace gippr
{

namespace
{

/** Flatten a list of workloads' traces, optionally skipping one. */
std::vector<FitnessTrace>
flattenExcept(const std::vector<WorkloadTraces> &workloads,
              const std::string &skip)
{
    std::vector<FitnessTrace> out;
    for (const auto &w : workloads) {
        if (w.name == skip)
            continue;
        out.insert(out.end(), w.traces.begin(), w.traces.end());
    }
    return out;
}

/**
 * Run one GA fold and pick a duel set from its final population.
 *
 * Both stages share the fold's FitnessEvaluator, so the batched
 * evaluations inside evolveIpv warm its memo cache and the duel-set
 * candidates (drawn from the final population) are scored without a
 * single extra replay.  Throws robust::Interrupted when the inner GA
 * stopped early for shutdown (its checkpoint is already on disk).
 */
std::vector<Ipv>
evolveAndSelect(const FitnessEvaluator &fitness, IpvFamily family,
                size_t n_vectors, const GaParams &params)
{
    GaResult ga = evolveIpv(fitness, family, params);
    if (ga.interrupted)
        throw robust::Interrupted(
            "GA fold interrupted; checkpoint saved to " +
            params.checkpoint.path);
    if (n_vectors <= 1)
        return {ga.best};
    // Consider the top of the final population as the vector farm.
    std::vector<Ipv> candidates;
    size_t pool = std::min<size_t>(ga.finalPopulation.size(), 24);
    candidates.reserve(pool);
    for (size_t i = 0; i < pool; ++i)
        candidates.push_back(ga.finalPopulation[i].ipv);
    return selectDuelSet(fitness, family, candidates, n_vectors);
}

/** Digest of every parameter that shapes an evolveWn1 run. */
uint64_t
wn1ConfigDigest(const std::vector<WorkloadTraces> &workloads,
                IpvFamily family, size_t n_vectors,
                const GaParams &params)
{
    uint64_t d = kDigestBasis;
    d = digestMix(d, 0x776e3163ULL); // "wn1c" tag
    d = digestMix(d, static_cast<uint64_t>(family));
    d = digestMix(d, n_vectors);
    d = digestMix(d, params.seed);
    d = digestMix(d, params.initialPopulation);
    d = digestMix(d, params.population);
    d = digestMix(d, params.generations);
    uint64_t rate_bits;
    static_assert(sizeof(rate_bits) == sizeof(params.mutationRate));
    std::memcpy(&rate_bits, &params.mutationRate, sizeof(rate_bits));
    d = digestMix(d, rate_bits);
    d = digestMix(d, params.elites);
    d = digestMix(d, params.tournament);
    for (const auto &w : workloads) {
        for (char c : w.name)
            d = digestMix(d, static_cast<unsigned char>(c));
        d = digestMix(d, w.traces.size());
    }
    return d;
}

/** Workload name -> filesystem-safe checkpoint-path fragment. */
std::string
sanitizeFoldName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name)
        out.push_back(
            std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    return out;
}

} // namespace

std::vector<Ipv>
evolveWi(const CacheConfig &llc,
         const std::vector<WorkloadTraces> &workloads, IpvFamily family,
         size_t n_vectors, const GaParams &params)
{
    if (workloads.empty())
        fatal("evolveWi: no workloads");
    FitnessEvaluator fitness(llc, flattenExcept(workloads, ""), {});
    return evolveAndSelect(fitness, family, n_vectors, params);
}

Wn1Vectors
evolveWn1(const CacheConfig &llc,
          const std::vector<WorkloadTraces> &workloads, IpvFamily family,
          size_t n_vectors, const GaParams &params)
{
    if (workloads.size() < 2)
        fatal("evolveWn1 needs at least two workloads");

    // Crash safety: params.checkpoint.path names the fold-progress
    // file (a Wn1Checkpoint of completed folds' duel sets); each
    // fold's inner GA checkpoints at path + ".fold-<name>".  A
    // resumed run skips completed folds outright and resumes the
    // in-progress fold from its GA checkpoint, so the returned map is
    // bit-identical to an uninterrupted run's.
    const robust::CheckpointOptions &ckpt = params.checkpoint;
    const uint64_t config_digest =
        ckpt.enabled()
            ? wn1ConfigDigest(workloads, family, n_vectors, params)
            : 0;
    Wn1Checkpoint done_folds;
    done_folds.configDigest = config_digest;
    if (ckpt.enabled() && ckpt.resume &&
        robust::checkpointExists(ckpt.path)) {
        done_folds = loadWn1Checkpoint(ckpt.path, config_digest);
        inform("resumed WN1 run from " + ckpt.path + " with " +
               std::to_string(done_folds.folds.size()) + "/" +
               std::to_string(workloads.size()) +
               " folds complete");
    }
    const auto completedFold =
        [&](const std::string &name)
        -> const std::vector<std::vector<uint8_t>> * {
        for (const auto &[n, vectors] : done_folds.folds)
            if (n == name)
                return &vectors;
        return nullptr;
    };

    Wn1Vectors out;
    unsigned fold = 0;
    for (const auto &held_out : workloads) {
        if (ckpt.enabled()) {
            if (const auto *vectors = completedFold(held_out.name)) {
                std::vector<Ipv> ipvs;
                ipvs.reserve(vectors->size());
                for (const auto &entries : *vectors)
                    ipvs.emplace_back(entries);
                out[held_out.name] = std::move(ipvs);
                ++fold;
                continue;
            }
            if (ckpt.stopRequested()) {
                saveWn1Checkpoint(ckpt.path, done_folds);
                throw robust::Interrupted(
                    "WN1 run interrupted before fold \"" +
                    held_out.name + "\"; checkpoint saved to " +
                    ckpt.path);
            }
        }
        FitnessEvaluator fitness(
            llc, flattenExcept(workloads, held_out.name), {});
        GaParams fold_params = params;
        fold_params.seed = params.seed + 0x9e37 * (fold + 1);
        if (ckpt.enabled())
            fold_params.checkpoint.path =
                ckpt.path + ".fold-" + sanitizeFoldName(held_out.name);
        std::vector<Ipv> vectors =
            evolveAndSelect(fitness, family, n_vectors, fold_params);
        if (ckpt.enabled()) {
            std::vector<std::vector<uint8_t>> raw;
            raw.reserve(vectors.size());
            for (const Ipv &v : vectors)
                raw.push_back(v.entries());
            done_folds.folds.emplace_back(held_out.name,
                                          std::move(raw));
            saveWn1Checkpoint(ckpt.path, done_folds);
        }
        out[held_out.name] = std::move(vectors);
        inform("WN1 fold complete: " + held_out.name);
        ++fold;
    }
    return out;
}

} // namespace gippr
