/**
 * @file
 * Random design-space search implementation.
 */

#include "ga/random_search.hh"

#include <algorithm>
#include <atomic>
#include <thread>

namespace gippr
{

Ipv
randomIpv(unsigned ways, Rng &rng)
{
    std::vector<uint8_t> entries(ways + 1);
    for (auto &e : entries)
        e = static_cast<uint8_t>(rng.nextBounded(ways));
    return Ipv(std::move(entries));
}

std::vector<SampledIpv>
randomSearch(const FitnessEvaluator &fitness, IpvFamily family,
             size_t count, uint64_t seed, unsigned threads)
{
    const unsigned ways = familyArity(family, fitness.llc());
    std::vector<SampledIpv> samples(count);
    Rng rng(seed);
    for (auto &s : samples)
        s.ipv = randomIpv(ways, rng);

    std::atomic<size_t> cursor{0};
    auto worker = [&]() {
        for (;;) {
            size_t i = cursor.fetch_add(1);
            if (i >= samples.size())
                return;
            samples[i].fitness = fitness.evaluate(samples[i].ipv, family);
        }
    };
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    std::sort(samples.begin(), samples.end(),
              [](const SampledIpv &a, const SampledIpv &b) {
                  return a.fitness < b.fitness;
              });
    return samples;
}

} // namespace gippr
