/**
 * @file
 * Random design-space search implementation.
 */

#include "ga/random_search.hh"

#include <algorithm>
#include <cstddef>

#include "ga/ga_checkpoint.hh"
#include "util/log.hh"

namespace gippr
{

namespace
{

/** Digest of every parameter that shapes a randomSearch run. */
uint64_t
randomConfigDigest(IpvFamily family, size_t count, uint64_t seed,
                   const FitnessEvaluator &fitness)
{
    uint64_t d = kDigestBasis;
    d = digestMix(d, 0x726e6473ULL); // "rnds" tag
    d = digestMix(d, static_cast<uint64_t>(family));
    d = digestMix(d, count);
    d = digestMix(d, seed);
    d = digestMix(d, fitness.batchWidth());
    d = digestMix(d, fitness.memoCapacity());
    return d;
}

} // namespace

Ipv
randomIpv(unsigned ways, Rng &rng)
{
    std::vector<uint8_t> entries(ways + 1);
    for (auto &e : entries)
        e = static_cast<uint8_t>(rng.nextBounded(ways));
    return Ipv(std::move(entries));
}

std::vector<SampledIpv>
randomSearch(const FitnessEvaluator &fitness, IpvFamily family,
             size_t count, uint64_t seed, unsigned threads,
             const robust::CheckpointOptions &ckpt)
{
    const unsigned ways = familyArity(family, fitness.llc());
    std::vector<SampledIpv> samples(count);
    std::vector<Ipv> ipvs;
    ipvs.reserve(count);
    Rng rng(seed);
    for (auto &s : samples) {
        s.ipv = randomIpv(ways, rng);
        ipvs.push_back(s.ipv);
    }

    // Batched evaluation: each trace streams once per genome batch
    // instead of once per sample (FitnessEvaluator::evaluateAll).
    std::vector<double> scores(count, 0.0);
    if (!ckpt.enabled()) {
        scores = fitness.evaluateAll(ipvs, family, threads);
    } else {
        // Chunked evaluation with a checkpoint after each chunk.  A
        // sample's score is independent of its batch, so the chunked
        // scores equal the single-call ones and a resumed run (same
        // seed, same draw) is bit-identical to an uninterrupted one.
        const uint64_t config_digest =
            randomConfigDigest(family, count, seed, fitness);
        const uint64_t suite_digest = fitness.traceSetDigest();
        size_t done = 0;
        if (ckpt.resume && robust::checkpointExists(ckpt.path)) {
            RandomSearchCheckpoint ck = loadRandomSearchCheckpoint(
                ckpt.path, config_digest, suite_digest);
            if (ck.scores.size() != count)
                fatal("random-search checkpoint " + ckpt.path +
                      " stores " + std::to_string(ck.scores.size()) +
                      " scores but the run samples " +
                      std::to_string(count));
            scores = std::move(ck.scores);
            done = ck.done;
            inform("resumed random search from " + ckpt.path +
                   " at sample " + std::to_string(done) + "/" +
                   std::to_string(count));
        }
        const auto save = [&](size_t completed) {
            RandomSearchCheckpoint ck;
            ck.configDigest = config_digest;
            ck.suiteDigest = suite_digest;
            ck.done = completed;
            ck.scores = scores;
            saveRandomSearchCheckpoint(ckpt.path, ck);
        };
        const size_t chunk = std::max<size_t>(fitness.batchWidth(), 64);
        if (done == 0)
            save(0);
        while (done < count) {
            if (ckpt.stopRequested()) {
                save(done);
                throw robust::Interrupted(
                    "random search interrupted after " +
                    std::to_string(done) + "/" +
                    std::to_string(count) +
                    " samples; checkpoint saved to " + ckpt.path);
            }
            const size_t n = std::min(chunk, count - done);
            const auto first =
                ipvs.begin() + static_cast<std::ptrdiff_t>(done);
            const std::vector<Ipv> batch(
                first, first + static_cast<std::ptrdiff_t>(n));
            const std::vector<double> got =
                fitness.evaluateAll(batch, family, threads);
            std::copy(got.begin(), got.end(),
                      scores.begin() +
                          static_cast<std::ptrdiff_t>(done));
            done += n;
            save(done);
        }
    }
    for (size_t i = 0; i < samples.size(); ++i)
        samples[i].fitness = scores[i];

    std::sort(samples.begin(), samples.end(),
              [](const SampledIpv &a, const SampledIpv &b) {
                  return a.fitness < b.fitness;
              });
    return samples;
}

} // namespace gippr
