/**
 * @file
 * Random design-space search implementation.
 */

#include "ga/random_search.hh"

#include <algorithm>

namespace gippr
{

Ipv
randomIpv(unsigned ways, Rng &rng)
{
    std::vector<uint8_t> entries(ways + 1);
    for (auto &e : entries)
        e = static_cast<uint8_t>(rng.nextBounded(ways));
    return Ipv(std::move(entries));
}

std::vector<SampledIpv>
randomSearch(const FitnessEvaluator &fitness, IpvFamily family,
             size_t count, uint64_t seed, unsigned threads)
{
    const unsigned ways = familyArity(family, fitness.llc());
    std::vector<SampledIpv> samples(count);
    std::vector<Ipv> ipvs;
    ipvs.reserve(count);
    Rng rng(seed);
    for (auto &s : samples) {
        s.ipv = randomIpv(ways, rng);
        ipvs.push_back(s.ipv);
    }

    // Batched evaluation: each trace streams once per genome batch
    // instead of once per sample (FitnessEvaluator::evaluateAll).
    const std::vector<double> scores =
        fitness.evaluateAll(ipvs, family, threads);
    for (size_t i = 0; i < samples.size(); ++i)
        samples[i].fitness = scores[i];

    std::sort(samples.begin(), samples.end(),
              [](const SampledIpv &a, const SampledIpv &b) {
                  return a.fitness < b.fitness;
              });
    return samples;
}

} // namespace gippr
