/**
 * @file
 * The genetic algorithm's fitness function (paper, Section 4.3).
 *
 * The paper evaluates candidate IPVs on a *fast* cache-only simulator:
 * LLC access traces are replayed under the candidate policy, and CPI
 * is estimated as a linear function of the miss count; fitness is the
 * average estimated speedup over the LRU baseline across all training
 * simpoints.  The first third of each trace warms the cache and the
 * remainder is measured (the paper warms with 500M of 1.5B
 * instructions).  As the paper notes, this model deliberately ignores
 * memory-level parallelism; the full CPU model in src/sim is used for
 * final reporting only.
 */

#ifndef GIPPR_GA_FITNESS_HH_
#define GIPPR_GA_FITNESS_HH_

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "core/ipv.hh"
#include "sim/fastpath/engine.hh"
#include "telemetry/metrics.hh"
#include "telemetry/timer.hh"
#include "trace/simpoint.hh"
#include "trace/trace.hh"

namespace gippr
{

/** Which IPV-driven policy family a vector is evaluated under. */
enum class IpvFamily
{
    Giplr,   ///< true-LRU recency stack (paper Section 2)
    Gippr,   ///< tree PseudoLRU (paper Section 3)
    RripIpv, ///< 2-bit RRIP generalization (paper Section 7, item 5)
};

/**
 * Arity of the vectors a family evolves: the associativity for the
 * stack/tree families, the RRPV level count (4) for RripIpv.
 */
unsigned familyArity(IpvFamily family, const CacheConfig &llc);

/** Linear CPI model parameters. */
struct CpiModel
{
    /** Cycles per instruction with a perfect LLC. */
    double baseCpi = 0.5;
    /** Extra cycles charged per LLC demand miss. */
    double missPenalty = 200.0;
};

/** One training unit: a pre-filtered LLC trace. */
struct FitnessTrace
{
    /** Name of the workload/simpoint this trace came from. */
    std::string name;
    /** LLC-level access trace (see Hierarchy::filterToLlc). */
    std::shared_ptr<const Trace> llcTrace;
    /** Instructions the originating CPU-level segment covered. */
    uint64_t instructions = 0;
};

/** Evaluates IPVs by estimated speedup over LRU. */
class FitnessEvaluator
{
  public:
    /**
     * @param llc      geometry of the LLC under study
     * @param traces   training traces; LRU baselines are precomputed
     *                 here, in parallel over the traces
     * @param model    linear CPI model
     * @param timings  optional sink for the "fitness_baseline" phase
     * @param engine   replay engine for the LRU/GIPLR/GIPPR families
     *                 (RripIpv always replays on the scalar
     *                 simulator); null means defaultReplayEngine()
     */
    FitnessEvaluator(const CacheConfig &llc,
                     std::vector<FitnessTrace> traces,
                     CpiModel model = {},
                     telemetry::PhaseTimings *timings = nullptr,
                     const fastpath::ReplayEngine *engine = nullptr);

    /**
     * Mean estimated speedup of @p ipv over LRU across the training
     * traces (the paper's arithmetic-mean fitness).
     */
    double evaluate(const Ipv &ipv, IpvFamily family) const;

    /** Per-trace speedups for @p ipv (diagnostics, set selection). */
    std::vector<double> perTraceSpeedups(const Ipv &ipv,
                                         IpvFamily family) const;

    /**
     * Batch evaluation: fitness of every vector in @p ipvs, computed
     * by streaming each trace ONCE for up to batchWidth() genomes at
     * a time (ReplayEngine::replayMany) and memoized on (family,
     * canonical IPV bytes, trace-set digest) so duplicate children,
     * carried-over elites and duel-set candidates never pay a second
     * replay.  @p threads as in parallelFor (0 = hardware, <= 1
     * inline); the work items are (genome-batch, trace) pairs.
     * Returns the same values evaluate() would, index-aligned.
     */
    std::vector<double> evaluateAll(std::span<const Ipv> ipvs,
                                    IpvFamily family,
                                    unsigned threads = 0) const;

    /** Batched perTraceSpeedups (one row per input vector). */
    std::vector<std::vector<double>>
    perTraceSpeedupsAll(std::span<const Ipv> ipvs, IpvFamily family,
                        unsigned threads = 0) const;

    /**
     * Measured demand misses for every (vector, trace) pair — the
     * batch kernel's raw output (row g, column t) and the unit the
     * memo cache stores.
     */
    std::vector<std::vector<uint64_t>>
    missesForAll(std::span<const Ipv> ipvs, IpvFamily family,
                 unsigned threads = 0) const;

    /**
     * Genomes replayed together per trace stream (default from
     * GIPPR_GA_BATCH, 32; <= 1 restores per-genome replay).
     */
    void setBatchWidth(unsigned genomes);
    unsigned batchWidth() const { return batchWidth_; }

    /**
     * Memo entries retained, each one vector's per-trace miss row
     * (default from GIPPR_GA_MEMO, 65536; 0 disables memoization).
     */
    void setMemoCapacity(size_t entries);
    size_t memoCapacity() const { return memoCapacity_; }

    /** FNV-1a digest of the training traces AND the LLC geometry
     *  (memo-key component): evaluators over the same traces at a
     *  different cache shape must not share memo entries. */
    uint64_t traceSetDigest() const { return traceDigest_; }

    /** Demand misses of @p ipv on trace @p idx (measured region). */
    uint64_t missesOn(size_t idx, const Ipv &ipv,
                      IpvFamily family) const;

    /** Precomputed LRU demand misses on trace @p idx. */
    uint64_t lruMisses(size_t idx) const;

    size_t traceCount() const { return traces_.size(); }
    const FitnessTrace &trace(size_t idx) const { return traces_[idx]; }
    const CacheConfig &llc() const { return llc_; }
    const CpiModel &model() const { return model_; }

    /** Estimated CPI given misses and an instruction count. */
    double estimateCpi(uint64_t misses, uint64_t instructions) const;

    /**
     * Count every evaluate()/evaluateAll() candidate in
     * "<prefix>.evaluations", every candidate trace replay in
     * "<prefix>.replays" (batched ones also in
     * "<prefix>.batch_replays"), and memo outcomes in
     * "<prefix>.memo_hits" / "<prefix>.memo_misses" (thread-safe; GA
     * workers call evaluate concurrently).
     */
    void attachTelemetry(telemetry::MetricRegistry &registry,
                         const std::string &prefix);

  private:
    size_t warmupOf(size_t idx) const;
    /** Memo key: family byte + trace-set digest + IPV bytes. */
    std::string memoKey(const Ipv &ipv, IpvFamily family) const;
    /** Scalar RripIpv replay of trace @p idx (no fast path). */
    uint64_t scalarRripMisses(size_t idx, const Ipv &ipv) const;
    /** CPI-model speedups from one per-trace miss row. */
    std::vector<double>
    speedupsFromMisses(const std::vector<uint64_t> &misses) const;

    CacheConfig llc_;
    std::vector<FitnessTrace> traces_;
    CpiModel model_;
    const fastpath::ReplayEngine *engine_;
    std::vector<uint64_t> lruMisses_;
    unsigned batchWidth_;
    size_t memoCapacity_;
    uint64_t traceDigest_ = 0;
    /** Memoized per-trace miss rows, keyed by memoKey(). */
    mutable std::mutex memoMu_;
    mutable std::unordered_map<std::string, std::vector<uint64_t>>
        memo_;
    telemetry::Counter *evaluations_ = nullptr;
    telemetry::Counter *replays_ = nullptr;
    telemetry::Counter *batchReplays_ = nullptr;
    telemetry::Counter *memoHits_ = nullptr;
    telemetry::Counter *memoMisses_ = nullptr;
};

/**
 * Convenience: filter CPU-level workloads down to LLC traces for
 * fitness evaluation (one FitnessTrace per simpoint, named
 * "<workload>/<index>").  L1 and L2 use true LRU, as in the paper.
 */
std::vector<FitnessTrace>
buildFitnessTraces(const std::vector<Workload> &workloads,
                   const HierarchyConfig &hier);

} // namespace gippr

#endif // GIPPR_GA_FITNESS_HH_
