/**
 * @file
 * The genetic algorithm's fitness function (paper, Section 4.3).
 *
 * The paper evaluates candidate IPVs on a *fast* cache-only simulator:
 * LLC access traces are replayed under the candidate policy, and CPI
 * is estimated as a linear function of the miss count; fitness is the
 * average estimated speedup over the LRU baseline across all training
 * simpoints.  The first third of each trace warms the cache and the
 * remainder is measured (the paper warms with 500M of 1.5B
 * instructions).  As the paper notes, this model deliberately ignores
 * memory-level parallelism; the full CPU model in src/sim is used for
 * final reporting only.
 */

#ifndef GIPPR_GA_FITNESS_HH_
#define GIPPR_GA_FITNESS_HH_

#include <memory>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "core/ipv.hh"
#include "sim/fastpath/engine.hh"
#include "telemetry/metrics.hh"
#include "telemetry/timer.hh"
#include "trace/simpoint.hh"
#include "trace/trace.hh"

namespace gippr
{

/** Which IPV-driven policy family a vector is evaluated under. */
enum class IpvFamily
{
    Giplr,   ///< true-LRU recency stack (paper Section 2)
    Gippr,   ///< tree PseudoLRU (paper Section 3)
    RripIpv, ///< 2-bit RRIP generalization (paper Section 7, item 5)
};

/**
 * Arity of the vectors a family evolves: the associativity for the
 * stack/tree families, the RRPV level count (4) for RripIpv.
 */
unsigned familyArity(IpvFamily family, const CacheConfig &llc);

/** Linear CPI model parameters. */
struct CpiModel
{
    /** Cycles per instruction with a perfect LLC. */
    double baseCpi = 0.5;
    /** Extra cycles charged per LLC demand miss. */
    double missPenalty = 200.0;
};

/** One training unit: a pre-filtered LLC trace. */
struct FitnessTrace
{
    /** Name of the workload/simpoint this trace came from. */
    std::string name;
    /** LLC-level access trace (see Hierarchy::filterToLlc). */
    std::shared_ptr<const Trace> llcTrace;
    /** Instructions the originating CPU-level segment covered. */
    uint64_t instructions = 0;
};

/** Evaluates IPVs by estimated speedup over LRU. */
class FitnessEvaluator
{
  public:
    /**
     * @param llc      geometry of the LLC under study
     * @param traces   training traces; LRU baselines are precomputed
     *                 here, in parallel over the traces
     * @param model    linear CPI model
     * @param timings  optional sink for the "fitness_baseline" phase
     * @param engine   replay engine for the LRU/GIPLR/GIPPR families
     *                 (RripIpv always replays on the scalar
     *                 simulator); null means defaultReplayEngine()
     */
    FitnessEvaluator(const CacheConfig &llc,
                     std::vector<FitnessTrace> traces,
                     CpiModel model = {},
                     telemetry::PhaseTimings *timings = nullptr,
                     const fastpath::ReplayEngine *engine = nullptr);

    /**
     * Mean estimated speedup of @p ipv over LRU across the training
     * traces (the paper's arithmetic-mean fitness).
     */
    double evaluate(const Ipv &ipv, IpvFamily family) const;

    /** Per-trace speedups for @p ipv (diagnostics, set selection). */
    std::vector<double> perTraceSpeedups(const Ipv &ipv,
                                         IpvFamily family) const;

    /** Demand misses of @p ipv on trace @p idx (measured region). */
    uint64_t missesOn(size_t idx, const Ipv &ipv,
                      IpvFamily family) const;

    /** Precomputed LRU demand misses on trace @p idx. */
    uint64_t lruMisses(size_t idx) const;

    size_t traceCount() const { return traces_.size(); }
    const FitnessTrace &trace(size_t idx) const { return traces_[idx]; }
    const CacheConfig &llc() const { return llc_; }
    const CpiModel &model() const { return model_; }

    /** Estimated CPI given misses and an instruction count. */
    double estimateCpi(uint64_t misses, uint64_t instructions) const;

    /**
     * Count every evaluate() call in "<prefix>.evaluations" and every
     * candidate trace replay in "<prefix>.replays" (thread-safe; GA
     * workers call evaluate concurrently).
     */
    void attachTelemetry(telemetry::MetricRegistry &registry,
                         const std::string &prefix);

  private:
    size_t warmupOf(size_t idx) const;

    CacheConfig llc_;
    std::vector<FitnessTrace> traces_;
    CpiModel model_;
    const fastpath::ReplayEngine *engine_;
    std::vector<uint64_t> lruMisses_;
    telemetry::Counter *evaluations_ = nullptr;
    telemetry::Counter *replays_ = nullptr;
};

/**
 * Convenience: filter CPU-level workloads down to LLC traces for
 * fitness evaluation (one FitnessTrace per simpoint, named
 * "<workload>/<index>").  L1 and L2 use true LRU, as in the paper.
 */
std::vector<FitnessTrace>
buildFitnessTraces(const std::vector<Workload> &workloads,
                   const HierarchyConfig &hier);

} // namespace gippr

#endif // GIPPR_GA_FITNESS_HH_
