/**
 * @file
 * Hill-climbing refinement of an IPV (paper, Section 2.6: "We may
 * further refine the vector using a hill-climbing approach").
 *
 * First-improvement local search: repeatedly scan every (element,
 * value) neighbour of the current vector and move to the first strict
 * improvement, until a full scan finds none or the evaluation budget
 * is exhausted.  Each element's neighbour row is evaluated as one
 * batch (FitnessEvaluator::evaluateAll, one streaming pass per trace
 * for the row) and scanned in value order, so the accepted move is
 * the same one the per-candidate scan would pick; the row is capped
 * at the remaining budget and every batched candidate counts against
 * it.
 */

#ifndef GIPPR_GA_HILL_CLIMB_HH_
#define GIPPR_GA_HILL_CLIMB_HH_

#include "core/ipv.hh"
#include "ga/fitness.hh"

namespace gippr
{

/** Result of a hill-climbing run. */
struct HillClimbResult
{
    Ipv best;
    double bestFitness = 0.0;
    /** Neighbour evaluations performed. */
    size_t evaluations = 0;
    /** Accepted improving moves. */
    size_t steps = 0;
};

/**
 * Refine @p start by local search.
 *
 * @param max_evaluations  evaluation budget (0 = unlimited)
 */
HillClimbResult hillClimb(const FitnessEvaluator &fitness,
                          IpvFamily family, const Ipv &start,
                          size_t max_evaluations = 0);

} // namespace gippr

#endif // GIPPR_GA_HILL_CLIMB_HH_
