/**
 * @file
 * Hill-climbing refinement of an IPV (paper, Section 2.6: "We may
 * further refine the vector using a hill-climbing approach").
 *
 * First-improvement local search: repeatedly scan every (element,
 * value) neighbour of the current vector and move to the first strict
 * improvement, until a full scan finds none or the evaluation budget
 * is exhausted.  Each element's neighbour row is evaluated as one
 * batch (FitnessEvaluator::evaluateAll, one streaming pass per trace
 * for the row) and scanned in value order, so the accepted move is
 * the same one the per-candidate scan would pick; the row is capped
 * at the remaining budget and every batched candidate counts against
 * it.
 */

#ifndef GIPPR_GA_HILL_CLIMB_HH_
#define GIPPR_GA_HILL_CLIMB_HH_

#include "core/ipv.hh"
#include "ga/fitness.hh"
#include "robust/checkpoint.hh"

namespace gippr
{

/** Result of a hill-climbing run. */
struct HillClimbResult
{
    Ipv best;
    double bestFitness = 0.0;
    /** Neighbour evaluations performed. */
    size_t evaluations = 0;
    /** Accepted improving moves. */
    size_t steps = 0;
    /**
     * True when the climb stopped at a scan boundary because shutdown
     * was requested; the checkpoint on disk resumes the rest.
     */
    bool interrupted = false;
};

/**
 * Refine @p start by local search.
 *
 * With @p ckpt enabled the climb checkpoints at each scan boundary
 * (after every accepted move); a resumed run re-runs the remaining
 * scans from the restored state, which is bit-identical to never
 * having stopped because the scan order is deterministic.
 *
 * @param max_evaluations  evaluation budget (0 = unlimited)
 */
HillClimbResult hillClimb(const FitnessEvaluator &fitness,
                          IpvFamily family, const Ipv &start,
                          size_t max_evaluations = 0,
                          const robust::CheckpointOptions &ckpt = {});

} // namespace gippr

#endif // GIPPR_GA_HILL_CLIMB_HH_
