/**
 * @file
 * Hill-climbing refinement of an IPV (paper, Section 2.6: "We may
 * further refine the vector using a hill-climbing approach").
 *
 * First-improvement local search: repeatedly scan every (element,
 * value) neighbour of the current vector and move to the first strict
 * improvement, until a full scan finds none or the evaluation budget
 * is exhausted.
 */

#ifndef GIPPR_GA_HILL_CLIMB_HH_
#define GIPPR_GA_HILL_CLIMB_HH_

#include "core/ipv.hh"
#include "ga/fitness.hh"

namespace gippr
{

/** Result of a hill-climbing run. */
struct HillClimbResult
{
    Ipv best;
    double bestFitness = 0.0;
    /** Neighbour evaluations performed. */
    size_t evaluations = 0;
    /** Accepted improving moves. */
    size_t steps = 0;
};

/**
 * Refine @p start by local search.
 *
 * @param max_evaluations  evaluation budget (0 = unlimited)
 */
HillClimbResult hillClimb(const FitnessEvaluator &fitness,
                          IpvFamily family, const Ipv &start,
                          size_t max_evaluations = 0);

} // namespace gippr

#endif // GIPPR_GA_HILL_CLIMB_HH_
