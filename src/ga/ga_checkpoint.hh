/**
 * @file
 * Checkpoint payloads for the search drivers.
 *
 * Each driver (evolveIpv, randomSearch, hillClimb, evolveWn1) defines
 * a payload carrying exactly the state needed to resume at its next
 * clean boundary and produce a run *bit-identical* to an
 * uninterrupted one: the RNG engine state, the sorted population with
 * fitness values as IEEE-754 bit patterns, and progress counters.
 * Payloads travel inside the checksummed robust/checkpoint.hh
 * envelope; loads additionally validate two digests —
 *
 *   suiteDigest   FNV-1a over the training traces
 *                 (FitnessEvaluator::traceSetDigest), so a checkpoint
 *                 can never silently resume against different
 *                 training data;
 *   configDigest  FNV-1a over every search parameter that shapes the
 *                 run (seed, population sizes, operators, seed IPVs,
 *                 batch/memo configuration), so a checkpoint can
 *                 never resume under a different configuration.
 *
 * Any mismatch is a clear std::runtime_error, never a crash and never
 * a silent restart.
 */

#ifndef GIPPR_GA_GA_CHECKPOINT_HH_
#define GIPPR_GA_GA_CHECKPOINT_HH_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ga/random_search.hh"

namespace gippr
{

/** FNV-1a step over one 64-bit word (digest building block). */
uint64_t digestMix(uint64_t digest, uint64_t word);

/** FNV-1a offset basis (digest seed). */
constexpr uint64_t kDigestBasis = 0xcbf29ce484222325ULL;

/** State of an evolveIpv run at a generation boundary. */
struct GaCheckpoint
{
    uint64_t configDigest = 0;
    uint64_t suiteDigest = 0;
    std::array<uint64_t, 4> rngState{};
    /** Generations completed after generation zero. */
    uint64_t generation = 0;
    /** Population, sorted best-first, with carried fitness. */
    std::vector<SampledIpv> population;
    std::vector<double> history;
    std::vector<double> generationSeconds;
};

void saveGaCheckpoint(const std::string &path, const GaCheckpoint &ck);

/**
 * Load and validate an evolveIpv checkpoint.  Throws
 * std::runtime_error when the file is corrupt, a different format
 * version, or was written for a different suite/configuration.
 */
GaCheckpoint loadGaCheckpoint(const std::string &path,
                              uint64_t configDigest,
                              uint64_t suiteDigest);

/** State of a randomSearch run at a chunk boundary. */
struct RandomSearchCheckpoint
{
    uint64_t configDigest = 0;
    uint64_t suiteDigest = 0;
    /** Samples evaluated so far (prefix of the deterministic draw). */
    uint64_t done = 0;
    /** scores[0..done): fitness per sample, in draw order. */
    std::vector<double> scores;
};

void saveRandomSearchCheckpoint(const std::string &path,
                                const RandomSearchCheckpoint &ck);
RandomSearchCheckpoint
loadRandomSearchCheckpoint(const std::string &path,
                           uint64_t configDigest, uint64_t suiteDigest);

/** State of a hillClimb run at an accepted-move boundary. */
struct HillClimbCheckpoint
{
    uint64_t configDigest = 0;
    uint64_t suiteDigest = 0;
    std::vector<uint8_t> best;
    double bestFitness = 0.0;
    uint64_t evaluations = 0;
    uint64_t steps = 0;
};

void saveHillClimbCheckpoint(const std::string &path,
                             const HillClimbCheckpoint &ck);
HillClimbCheckpoint
loadHillClimbCheckpoint(const std::string &path, uint64_t configDigest,
                        uint64_t suiteDigest);

/** Completed folds of an evolveWn1 run. */
struct Wn1Checkpoint
{
    uint64_t configDigest = 0;
    /** Fold name -> selected duel-set vectors (raw IPV entries). */
    std::vector<std::pair<std::string, std::vector<std::vector<uint8_t>>>>
        folds;
};

void saveWn1Checkpoint(const std::string &path, const Wn1Checkpoint &ck);
Wn1Checkpoint loadWn1Checkpoint(const std::string &path,
                                uint64_t configDigest);

/**
 * One island's top-k emigrants at an exchange round, published into
 * the coordination directory for every peer to incorporate.
 */
struct IslandMigrants
{
    uint64_t configDigest = 0;
    /** Sending island. */
    uint32_t island = 0;
    /** Exchange round (1-based; round r fires after generation r*E). */
    uint64_t round = 0;
    /** Top-k individuals, best first, with carried fitness. */
    std::vector<SampledIpv> migrants;
};

void saveIslandMigrants(const std::string &path,
                        const IslandMigrants &m);

/**
 * Non-throwing migrant load: returns false — leaving @p out alone —
 * when the file is missing, torn (envelope CRC), the wrong kind, or
 * was written under a different configuration.  A failed load is a
 * *skipped* migrant set, never an aborted exchange round: the
 * receiving island simply continues without that peer's genes.
 */
bool tryLoadIslandMigrants(const std::string &path,
                           uint64_t configDigest, IslandMigrants &out);

/**
 * State of one island worker at a generation boundary.  Saved under
 * kind "island-state" while running and "island-final" once the
 * island finishes all generations (the merge step refuses to fold
 * non-final islands).
 */
struct IslandCheckpoint
{
    uint64_t configDigest = 0;
    uint64_t suiteDigest = 0;
    uint32_t island = 0;
    std::array<uint64_t, 4> rngState{};
    /** Generations completed after generation zero. */
    uint64_t generation = 0;
    /** Exchange rounds fully incorporated. */
    uint64_t exchangesDone = 0;
    /** Peer migrant sets missed (deadline/torn) across all rounds. */
    uint64_t exchangesMissed = 0;
    /** Population, sorted best-first, with carried fitness. */
    std::vector<SampledIpv> population;
    std::vector<double> history;
    std::vector<double> generationSeconds;
};

void saveIslandCheckpoint(const std::string &path,
                          const IslandCheckpoint &ck, bool final);
IslandCheckpoint loadIslandCheckpoint(const std::string &path,
                                      uint64_t configDigest,
                                      uint64_t suiteDigest, bool final);

} // namespace gippr

#endif // GIPPR_GA_GA_CHECKPOINT_HH_
