/**
 * @file
 * Fitness function implementation.
 */

#include "ga/fitness.hh"

#include <cstdlib>

#include "cache/cache.hh"
#include "cache/replay.hh"
#include "core/rrip_ipv.hh"
#include "policies/lru.hh"
#include "util/check.hh"
#include "util/log.hh"
#include "util/parallel.hh"
#include "util/stats.hh"

namespace gippr
{

namespace
{

// FNV-1a, matching the suite-digest convention.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
fnv1a(uint64_t h, const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
foldU64(uint64_t h, uint64_t v)
{
    return fnv1a(h, &v, sizeof v);
}

/** Content digest of one training trace (memo-key component). */
uint64_t
digestTrace(const FitnessTrace &t)
{
    uint64_t h = kFnvOffset;
    h = fnv1a(h, t.name.data(), t.name.size());
    h = foldU64(h, t.instructions);
    const Trace &tr = *t.llcTrace;
    h = foldU64(h, tr.size());
    for (const MemRecord &r : tr) {
        h = foldU64(h, r.addr);
        h = foldU64(h, r.pc);
        h = foldU64(h, (uint64_t{r.instGap} << 1) | r.isWrite);
    }
    return h;
}

/** GIPPR_GA_BATCH: genomes per batched trace stream (<= 1 disables). */
unsigned
envBatchWidth()
{
    if (const char *s = std::getenv("GIPPR_GA_BATCH")) {
        const unsigned long v = std::strtoul(s, nullptr, 10);
        return v == 0 ? 1u : static_cast<unsigned>(v);
    }
    return 32;
}

/** GIPPR_GA_MEMO: memo entries retained (0 disables the cache). */
size_t
envMemoCapacity()
{
    if (const char *s = std::getenv("GIPPR_GA_MEMO"))
        return static_cast<size_t>(std::strtoull(s, nullptr, 10));
    return size_t{1} << 16;
}

/** Fast-path spec for the stack/tree families. */
fastpath::ReplaySpec
specFor(const Ipv &ipv, IpvFamily family)
{
    GIPPR_CHECK(family != IpvFamily::RripIpv);
    return family == IpvFamily::Giplr ? fastpath::giplrSpec(ipv)
                                      : fastpath::gipprSpec(ipv);
}

} // namespace

FitnessEvaluator::FitnessEvaluator(const CacheConfig &llc,
                                   std::vector<FitnessTrace> traces,
                                   CpiModel model,
                                   telemetry::PhaseTimings *timings,
                                   const fastpath::ReplayEngine *engine)
    : llc_(llc), traces_(std::move(traces)), model_(model),
      engine_(engine ? engine : &fastpath::defaultReplayEngine()),
      batchWidth_(envBatchWidth()), memoCapacity_(envMemoCapacity())
{
    if (traces_.empty())
        fatal("fitness evaluator needs at least one training trace");
    telemetry::ScopedTimer timer(timings, "fitness_baseline");
    lruMisses_.resize(traces_.size());
    std::vector<uint64_t> digests(traces_.size());
    const fastpath::ReplaySpec lru = fastpath::lruSpec();
    parallelFor(traces_.size(), resolveThreads(0), [&](size_t i) {
        lruMisses_[i] = engine_
                            ->replay(lru, llc_, *traces_[i].llcTrace,
                                     warmupOf(i))
                            .measured.demandMisses;
        digests[i] = digestTrace(traces_[i]);
    });
    uint64_t h = kFnvOffset;
    for (uint64_t d : digests)
        h = foldU64(h, d);
    // Fold the LLC geometry in too: the same training traces replayed
    // at a different cache shape yield different miss counts, so two
    // evaluators differing only in geometry must not share memo hits.
    h = foldU64(h, llc_.sizeBytes);
    h = foldU64(h, llc_.assoc);
    h = foldU64(h, llc_.blockBytes);
    traceDigest_ = h;
}

void
FitnessEvaluator::setBatchWidth(unsigned genomes)
{
    batchWidth_ = genomes == 0 ? 1 : genomes;
}

void
FitnessEvaluator::setMemoCapacity(size_t entries)
{
    std::lock_guard<std::mutex> lock(memoMu_);
    memoCapacity_ = entries;
    if (memo_.size() > memoCapacity_)
        memo_.clear();
}

std::string
FitnessEvaluator::memoKey(const Ipv &ipv, IpvFamily family) const
{
    const std::vector<uint8_t> &e = ipv.entries();
    std::string key;
    key.reserve(1 + sizeof(traceDigest_) + e.size());
    key.push_back(static_cast<char>(family));
    key.append(reinterpret_cast<const char *>(&traceDigest_),
               sizeof(traceDigest_));
    key.append(reinterpret_cast<const char *>(e.data()), e.size());
    return key;
}

size_t
FitnessEvaluator::warmupOf(size_t idx) const
{
    // First third warms the cache, as in the paper's 500M/1.5B split.
    return traces_[idx].llcTrace->size() / 3;
}

double
FitnessEvaluator::estimateCpi(uint64_t misses,
                              uint64_t instructions) const
{
    if (instructions == 0)
        return model_.baseCpi;
    return model_.baseCpi + model_.missPenalty *
                                static_cast<double>(misses) /
                                static_cast<double>(instructions);
}

uint64_t
FitnessEvaluator::missesOn(size_t idx, const Ipv &ipv,
                           IpvFamily family) const
{
    GIPPR_CHECK(idx < traces_.size());
    if (replays_)
        replays_->increment();
    switch (family) {
      case IpvFamily::Giplr:
        return engine_
            ->replay(fastpath::giplrSpec(ipv), llc_,
                     *traces_[idx].llcTrace, warmupOf(idx))
            .measured.demandMisses;
      case IpvFamily::Gippr:
        return engine_
            ->replay(fastpath::gipprSpec(ipv), llc_,
                     *traces_[idx].llcTrace, warmupOf(idx))
            .measured.demandMisses;
      case IpvFamily::RripIpv:
        break; // no fast-path description; scalar below
    }
    return scalarRripMisses(idx, ipv);
}

uint64_t
FitnessEvaluator::scalarRripMisses(size_t idx, const Ipv &ipv) const
{
    SetAssocCache cache(llc_,
                        std::make_unique<RripIpvPolicy>(llc_, ipv, 2));
    replayTrace(cache, *traces_[idx].llcTrace, warmupOf(idx));
    return cache.stats().demandMisses;
}

std::vector<std::vector<uint64_t>>
FitnessEvaluator::missesForAll(std::span<const Ipv> ipvs,
                               IpvFamily family, unsigned threads) const
{
    std::vector<std::vector<uint64_t>> out(ipvs.size());
    if (ipvs.empty())
        return out;
    const size_t n_traces = traces_.size();

    // Memo lookups plus within-call dedup: duplicate vectors (cloned
    // children, repeated candidates) map onto one work slot.
    std::vector<std::string> keys(ipvs.size());
    for (size_t i = 0; i < ipvs.size(); ++i)
        keys[i] = memoKey(ipvs[i], family);
    std::vector<size_t> slotOf(ipvs.size(), SIZE_MAX);
    std::vector<size_t> work; // input index of each unique slot
    {
        std::unordered_map<std::string, size_t> pending;
        std::lock_guard<std::mutex> lock(memoMu_);
        for (size_t i = 0; i < ipvs.size(); ++i) {
            if (memoCapacity_ != 0) {
                const auto hit = memo_.find(keys[i]);
                if (hit != memo_.end()) {
                    out[i] = hit->second;
                    if (memoHits_)
                        memoHits_->increment();
                    continue;
                }
                if (memoMisses_)
                    memoMisses_->increment();
            }
            const auto [slot, inserted] =
                pending.emplace(keys[i], work.size());
            if (inserted)
                work.push_back(i);
            slotOf[i] = slot->second;
        }
    }
    if (work.empty())
        return out;

    // Replay the unique vectors: batched genome-major streams for the
    // fast-path families, scalar (genome, trace) items for RripIpv.
    std::vector<std::vector<uint64_t>> computed(
        work.size(), std::vector<uint64_t>(n_traces, 0));
    if (family == IpvFamily::RripIpv) {
        parallelFor(work.size() * n_traces, resolveThreads(threads),
                    [&](size_t item) {
                        const size_t u = item / n_traces;
                        const size_t t = item % n_traces;
                        computed[u][t] =
                            scalarRripMisses(t, ipvs[work[u]]);
                    });
    } else {
        const size_t width = std::max(1u, batchWidth_);
        const size_t groups = (work.size() + width - 1) / width;
        parallelFor(
            groups * n_traces, resolveThreads(threads),
            [&](size_t item) {
                const size_t g = item / n_traces;
                const size_t t = item % n_traces;
                const size_t lo = g * width;
                const size_t hi = std::min(work.size(), lo + width);
                if (hi - lo == 1) {
                    // Degenerate batch: identical to the per-genome
                    // fast path (and to what the GA did before
                    // batching existed).
                    computed[lo][t] =
                        engine_
                            ->replay(specFor(ipvs[work[lo]], family),
                                     llc_, *traces_[t].llcTrace,
                                     warmupOf(t))
                            .measured.demandMisses;
                    return;
                }
                std::vector<fastpath::ReplaySpec> specs;
                specs.reserve(hi - lo);
                for (size_t u = lo; u < hi; ++u)
                    specs.push_back(specFor(ipvs[work[u]], family));
                const std::vector<fastpath::ReplayStats> stats =
                    engine_->replayMany(specs, llc_,
                                        *traces_[t].llcTrace,
                                        warmupOf(t));
                for (size_t u = lo; u < hi; ++u)
                    computed[u][t] = stats[u - lo].measured.demandMisses;
                if (batchReplays_)
                    batchReplays_->increment(hi - lo);
            });
    }
    if (replays_)
        replays_->increment(work.size() * n_traces);

    if (memoCapacity_ != 0) {
        std::lock_guard<std::mutex> lock(memoMu_);
        for (size_t u = 0; u < work.size(); ++u) {
            if (memo_.size() >= memoCapacity_)
                break;
            memo_.emplace(keys[work[u]], computed[u]);
        }
    }
    for (size_t i = 0; i < ipvs.size(); ++i) {
        if (slotOf[i] != SIZE_MAX)
            out[i] = computed[slotOf[i]];
    }
    return out;
}

std::vector<double>
FitnessEvaluator::speedupsFromMisses(
    const std::vector<uint64_t> &misses) const
{
    std::vector<double> speedups;
    speedups.reserve(traces_.size());
    for (size_t i = 0; i < traces_.size(); ++i) {
        // Measured instructions: 2/3 of the segment (post-warmup).
        const uint64_t inst = traces_[i].instructions * 2 / 3;
        const double cpi_lru = estimateCpi(lruMisses_[i], inst);
        const double cpi_ipv = estimateCpi(misses[i], inst);
        speedups.push_back(cpi_lru / cpi_ipv);
    }
    return speedups;
}

std::vector<std::vector<double>>
FitnessEvaluator::perTraceSpeedupsAll(std::span<const Ipv> ipvs,
                                      IpvFamily family,
                                      unsigned threads) const
{
    const std::vector<std::vector<uint64_t>> misses =
        missesForAll(ipvs, family, threads);
    std::vector<std::vector<double>> out;
    out.reserve(ipvs.size());
    for (const std::vector<uint64_t> &row : misses)
        out.push_back(speedupsFromMisses(row));
    return out;
}

std::vector<double>
FitnessEvaluator::evaluateAll(std::span<const Ipv> ipvs,
                              IpvFamily family, unsigned threads) const
{
    if (evaluations_)
        evaluations_->increment(ipvs.size());
    std::vector<double> out;
    out.reserve(ipvs.size());
    for (const std::vector<double> &row :
         perTraceSpeedupsAll(ipvs, family, threads))
        out.push_back(mean(row));
    return out;
}

uint64_t
FitnessEvaluator::lruMisses(size_t idx) const
{
    GIPPR_CHECK(idx < lruMisses_.size());
    return lruMisses_[idx];
}

std::vector<double>
FitnessEvaluator::perTraceSpeedups(const Ipv &ipv,
                                   IpvFamily family) const
{
    // Route through the memoized batch path (a batch of one) so
    // repeated queries — carried-over elites, duel-set candidates —
    // reuse prior replays; threads stay at 1 because callers already
    // run this from worker threads.
    return perTraceSpeedupsAll(std::span<const Ipv>(&ipv, 1), family, 1)
        .front();
}

double
FitnessEvaluator::evaluate(const Ipv &ipv, IpvFamily family) const
{
    if (evaluations_)
        evaluations_->increment();
    return mean(perTraceSpeedups(ipv, family));
}

void
FitnessEvaluator::attachTelemetry(telemetry::MetricRegistry &registry,
                                  const std::string &prefix)
{
    evaluations_ = &registry.counter(prefix + ".evaluations");
    replays_ = &registry.counter(prefix + ".replays");
    batchReplays_ = &registry.counter(prefix + ".batch_replays");
    memoHits_ = &registry.counter(prefix + ".memo_hits");
    memoMisses_ = &registry.counter(prefix + ".memo_misses");
}

unsigned
familyArity(IpvFamily family, const CacheConfig &llc)
{
    switch (family) {
      case IpvFamily::Giplr:
      case IpvFamily::Gippr:
        return llc.assoc;
      case IpvFamily::RripIpv:
        return 4; // 2-bit RRPVs
    }
    return llc.assoc;
}

std::vector<FitnessTrace>
buildFitnessTraces(const std::vector<Workload> &workloads,
                   const HierarchyConfig &hier)
{
    auto lru_factory = [](const CacheConfig &cfg) {
        return std::make_unique<LruPolicy>(cfg);
    };
    std::vector<FitnessTrace> out;
    for (const Workload &w : workloads) {
        for (size_t s = 0; s < w.simpoints().size(); ++s) {
            const Simpoint &sp = w.simpoints()[s];
            FitnessTrace ft;
            ft.name = w.name() + "/" + std::to_string(s);
            ft.llcTrace = std::make_shared<Trace>(Hierarchy::filterToLlc(
                *sp.trace, hier, lru_factory, lru_factory));
            ft.instructions = sp.trace->instructions();
            out.push_back(std::move(ft));
        }
    }
    return out;
}

} // namespace gippr
