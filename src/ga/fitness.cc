/**
 * @file
 * Fitness function implementation.
 */

#include "ga/fitness.hh"

#include "cache/cache.hh"
#include "cache/replay.hh"
#include "core/rrip_ipv.hh"
#include "policies/lru.hh"
#include "util/check.hh"
#include "util/log.hh"
#include "util/parallel.hh"
#include "util/stats.hh"

namespace gippr
{

FitnessEvaluator::FitnessEvaluator(const CacheConfig &llc,
                                   std::vector<FitnessTrace> traces,
                                   CpiModel model,
                                   telemetry::PhaseTimings *timings,
                                   const fastpath::ReplayEngine *engine)
    : llc_(llc), traces_(std::move(traces)), model_(model),
      engine_(engine ? engine : &fastpath::defaultReplayEngine())
{
    if (traces_.empty())
        fatal("fitness evaluator needs at least one training trace");
    telemetry::ScopedTimer timer(timings, "fitness_baseline");
    lruMisses_.resize(traces_.size());
    const fastpath::ReplaySpec lru = fastpath::lruSpec();
    parallelFor(traces_.size(), resolveThreads(0), [&](size_t i) {
        lruMisses_[i] = engine_
                            ->replay(lru, llc_, *traces_[i].llcTrace,
                                     warmupOf(i))
                            .measured.demandMisses;
    });
}

size_t
FitnessEvaluator::warmupOf(size_t idx) const
{
    // First third warms the cache, as in the paper's 500M/1.5B split.
    return traces_[idx].llcTrace->size() / 3;
}

double
FitnessEvaluator::estimateCpi(uint64_t misses,
                              uint64_t instructions) const
{
    if (instructions == 0)
        return model_.baseCpi;
    return model_.baseCpi + model_.missPenalty *
                                static_cast<double>(misses) /
                                static_cast<double>(instructions);
}

uint64_t
FitnessEvaluator::missesOn(size_t idx, const Ipv &ipv,
                           IpvFamily family) const
{
    GIPPR_CHECK(idx < traces_.size());
    if (replays_)
        replays_->increment();
    switch (family) {
      case IpvFamily::Giplr:
        return engine_
            ->replay(fastpath::giplrSpec(ipv), llc_,
                     *traces_[idx].llcTrace, warmupOf(idx))
            .measured.demandMisses;
      case IpvFamily::Gippr:
        return engine_
            ->replay(fastpath::gipprSpec(ipv), llc_,
                     *traces_[idx].llcTrace, warmupOf(idx))
            .measured.demandMisses;
      case IpvFamily::RripIpv:
        break; // no fast-path description; scalar below
    }
    SetAssocCache cache(llc_,
                        std::make_unique<RripIpvPolicy>(llc_, ipv, 2));
    replayTrace(cache, *traces_[idx].llcTrace, warmupOf(idx));
    return cache.stats().demandMisses;
}

uint64_t
FitnessEvaluator::lruMisses(size_t idx) const
{
    GIPPR_CHECK(idx < lruMisses_.size());
    return lruMisses_[idx];
}

std::vector<double>
FitnessEvaluator::perTraceSpeedups(const Ipv &ipv,
                                   IpvFamily family) const
{
    std::vector<double> speedups;
    speedups.reserve(traces_.size());
    for (size_t i = 0; i < traces_.size(); ++i) {
        // Measured instructions: 2/3 of the segment (post-warmup).
        uint64_t inst = traces_[i].instructions * 2 / 3;
        double cpi_lru = estimateCpi(lruMisses_[i], inst);
        double cpi_ipv = estimateCpi(missesOn(i, ipv, family), inst);
        speedups.push_back(cpi_lru / cpi_ipv);
    }
    return speedups;
}

double
FitnessEvaluator::evaluate(const Ipv &ipv, IpvFamily family) const
{
    if (evaluations_)
        evaluations_->increment();
    return mean(perTraceSpeedups(ipv, family));
}

void
FitnessEvaluator::attachTelemetry(telemetry::MetricRegistry &registry,
                                  const std::string &prefix)
{
    evaluations_ = &registry.counter(prefix + ".evaluations");
    replays_ = &registry.counter(prefix + ".replays");
}

unsigned
familyArity(IpvFamily family, const CacheConfig &llc)
{
    switch (family) {
      case IpvFamily::Giplr:
      case IpvFamily::Gippr:
        return llc.assoc;
      case IpvFamily::RripIpv:
        return 4; // 2-bit RRPVs
    }
    return llc.assoc;
}

std::vector<FitnessTrace>
buildFitnessTraces(const std::vector<Workload> &workloads,
                   const HierarchyConfig &hier)
{
    auto lru_factory = [](const CacheConfig &cfg) {
        return std::make_unique<LruPolicy>(cfg);
    };
    std::vector<FitnessTrace> out;
    for (const Workload &w : workloads) {
        for (size_t s = 0; s < w.simpoints().size(); ++s) {
            const Simpoint &sp = w.simpoints()[s];
            FitnessTrace ft;
            ft.name = w.name() + "/" + std::to_string(s);
            ft.llcTrace = std::make_shared<Trace>(Hierarchy::filterToLlc(
                *sp.trace, hier, lru_factory, lru_factory));
            ft.instructions = sp.trace->instructions();
            out.push_back(std::move(ft));
        }
    }
    return out;
}

} // namespace gippr
