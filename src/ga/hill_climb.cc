/**
 * @file
 * Hill climbing implementation.
 */

#include "ga/hill_climb.hh"

#include "ga/ga_checkpoint.hh"
#include "util/log.hh"

namespace gippr
{

namespace
{

/** Digest of every parameter that shapes a hillClimb run. */
uint64_t
hillConfigDigest(IpvFamily family, const Ipv &start,
                 size_t max_evaluations,
                 const FitnessEvaluator &fitness)
{
    uint64_t d = kDigestBasis;
    d = digestMix(d, 0x68636c62ULL); // "hclb" tag
    d = digestMix(d, static_cast<uint64_t>(family));
    for (uint8_t e : start.entries())
        d = digestMix(d, e);
    d = digestMix(d, max_evaluations);
    d = digestMix(d, fitness.batchWidth());
    d = digestMix(d, fitness.memoCapacity());
    return d;
}

} // namespace

HillClimbResult
hillClimb(const FitnessEvaluator &fitness, IpvFamily family,
          const Ipv &start, size_t max_evaluations,
          const robust::CheckpointOptions &ckpt)
{
    const unsigned ways = familyArity(family, fitness.llc());
    HillClimbResult result;

    const uint64_t config_digest =
        ckpt.enabled()
            ? hillConfigDigest(family, start, max_evaluations, fitness)
            : 0;
    const uint64_t suite_digest =
        ckpt.enabled() ? fitness.traceSetDigest() : 0;
    // The checkpoint captures the full scan-boundary state; the scan
    // order from a given best vector is deterministic, so a resumed
    // run replays exactly the scans the interrupted one had left.
    const auto save = [&]() {
        HillClimbCheckpoint ck;
        ck.configDigest = config_digest;
        ck.suiteDigest = suite_digest;
        ck.best = result.best.entries();
        ck.bestFitness = result.bestFitness;
        ck.evaluations = result.evaluations;
        ck.steps = result.steps;
        saveHillClimbCheckpoint(ckpt.path, ck);
    };

    bool resumed = false;
    if (ckpt.enabled() && ckpt.resume &&
        robust::checkpointExists(ckpt.path)) {
        HillClimbCheckpoint ck = loadHillClimbCheckpoint(
            ckpt.path, config_digest, suite_digest);
        result.best = Ipv(std::move(ck.best));
        result.bestFitness = ck.bestFitness;
        result.evaluations = ck.evaluations;
        result.steps = ck.steps;
        resumed = true;
        inform("resumed hill climb from " + ckpt.path + " at " +
               std::to_string(result.steps) + " accepted moves");
    }
    if (!resumed) {
        result.best = start;
        result.bestFitness = fitness.evaluate(start, family);
        ++result.evaluations;
        if (ckpt.enabled())
            save();
    }

    bool improved = true;
    while (improved) {
        if (ckpt.stopRequested()) {
            save();
            result.interrupted = true;
            inform("hill climb interrupted after " +
                   std::to_string(result.steps) +
                   " accepted moves; checkpoint saved to " +
                   ckpt.path);
            return result;
        }
        improved = false;
        std::vector<uint8_t> entries = result.best.entries();
        for (size_t i = 0; i < entries.size() && !improved; ++i) {
            const uint8_t original = entries[i];
            // Every neighbour of element i, evaluated as one batch
            // (one streaming pass per trace for the whole row) and
            // scanned in value order, so the climb still accepts the
            // first strict improvement.  The row is capped at the
            // remaining budget; every batched candidate counts as an
            // evaluation.
            std::vector<Ipv> row;
            row.reserve(ways - 1);
            for (unsigned v = 0; v < ways; ++v) {
                if (v == original)
                    continue;
                if (max_evaluations &&
                    result.evaluations + row.size() >= max_evaluations)
                    break;
                entries[i] = static_cast<uint8_t>(v);
                row.emplace_back(entries);
            }
            entries[i] = original;
            if (row.empty())
                return result;
            const std::vector<double> scores =
                fitness.evaluateAll(row, family, 1);
            result.evaluations += row.size();
            for (size_t c = 0; c < row.size(); ++c) {
                if (scores[c] > result.bestFitness) {
                    result.best = row[c];
                    result.bestFitness = scores[c];
                    ++result.steps;
                    improved = true;
                    break;
                }
            }
            if (!improved && max_evaluations &&
                result.evaluations >= max_evaluations)
                return result;
        }
        if (improved && ckpt.enabled())
            save();
    }
    return result;
}

} // namespace gippr
