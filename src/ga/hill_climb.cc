/**
 * @file
 * Hill climbing implementation.
 */

#include "ga/hill_climb.hh"

namespace gippr
{

HillClimbResult
hillClimb(const FitnessEvaluator &fitness, IpvFamily family,
          const Ipv &start, size_t max_evaluations)
{
    const unsigned ways = familyArity(family, fitness.llc());
    HillClimbResult result;
    result.best = start;
    result.bestFitness = fitness.evaluate(start, family);
    ++result.evaluations;

    bool improved = true;
    while (improved) {
        improved = false;
        std::vector<uint8_t> entries = result.best.entries();
        for (size_t i = 0; i < entries.size() && !improved; ++i) {
            const uint8_t original = entries[i];
            for (unsigned v = 0; v < ways; ++v) {
                if (v == original)
                    continue;
                if (max_evaluations &&
                    result.evaluations >= max_evaluations)
                    return result;
                entries[i] = static_cast<uint8_t>(v);
                Ipv candidate(entries);
                double f = fitness.evaluate(candidate, family);
                ++result.evaluations;
                if (f > result.bestFitness) {
                    result.best = candidate;
                    result.bestFitness = f;
                    ++result.steps;
                    improved = true;
                    break;
                }
            }
            if (!improved)
                entries[i] = original;
        }
    }
    return result;
}

} // namespace gippr
