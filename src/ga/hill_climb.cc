/**
 * @file
 * Hill climbing implementation.
 */

#include "ga/hill_climb.hh"

namespace gippr
{

HillClimbResult
hillClimb(const FitnessEvaluator &fitness, IpvFamily family,
          const Ipv &start, size_t max_evaluations)
{
    const unsigned ways = familyArity(family, fitness.llc());
    HillClimbResult result;
    result.best = start;
    result.bestFitness = fitness.evaluate(start, family);
    ++result.evaluations;

    bool improved = true;
    while (improved) {
        improved = false;
        std::vector<uint8_t> entries = result.best.entries();
        for (size_t i = 0; i < entries.size() && !improved; ++i) {
            const uint8_t original = entries[i];
            // Every neighbour of element i, evaluated as one batch
            // (one streaming pass per trace for the whole row) and
            // scanned in value order, so the climb still accepts the
            // first strict improvement.  The row is capped at the
            // remaining budget; every batched candidate counts as an
            // evaluation.
            std::vector<Ipv> row;
            row.reserve(ways - 1);
            for (unsigned v = 0; v < ways; ++v) {
                if (v == original)
                    continue;
                if (max_evaluations &&
                    result.evaluations + row.size() >= max_evaluations)
                    break;
                entries[i] = static_cast<uint8_t>(v);
                row.emplace_back(entries);
            }
            entries[i] = original;
            if (row.empty())
                return result;
            const std::vector<double> scores =
                fitness.evaluateAll(row, family, 1);
            result.evaluations += row.size();
            for (size_t c = 0; c < row.size(); ++c) {
                if (scores[c] > result.bestFitness) {
                    result.best = row[c];
                    result.bestFitness = scores[c];
                    ++result.steps;
                    improved = true;
                    break;
                }
            }
            if (!improved && max_evaluations &&
                result.evaluations >= max_evaluations)
                return result;
        }
    }
    return result;
}

} // namespace gippr
