/**
 * @file
 * Genetic search for good IPVs (paper, Section 4.2).
 *
 * The paper's recipe: a large random initial population, single-point
 * crossover between mated vectors, a 5% chance of mutating one random
 * element per offspring, and fitness = mean estimated speedup over
 * LRU.  The paper runs populations of 20,000/4,000 seeded into a
 * pgapack run of 256 on a cluster for a day; this in-process version
 * keeps the same operators with tunable (much smaller) sizes and uses
 * threads instead of MPI.
 */

#ifndef GIPPR_GA_GENETIC_HH_
#define GIPPR_GA_GENETIC_HH_

#include <vector>

#include "core/ipv.hh"
#include "ga/fitness.hh"
#include "ga/random_search.hh"
#include "robust/checkpoint.hh"
#include "telemetry/progress.hh"
#include "telemetry/timer.hh"

namespace gippr
{

/** Genetic-algorithm knobs. */
struct GaParams
{
    /** Individuals in the first (seeding) generation. */
    size_t initialPopulation = 400;
    /** Individuals in subsequent generations. */
    size_t population = 120;
    /** Generations after the first. */
    unsigned generations = 25;
    /** Probability an offspring suffers one random-element mutation. */
    double mutationRate = 0.05;
    /** Individuals copied unchanged to the next generation. */
    size_t elites = 4;
    /** Tournament size for parent selection. */
    unsigned tournament = 3;
    /** Worker threads for fitness evaluation. */
    unsigned threads = 4;
    /** RNG seed. */
    uint64_t seed = 12345;
    /** Optional seed individuals injected into generation zero. */
    std::vector<Ipv> seedIpvs;
    /**
     * Optional telemetry (both may be null).  The sink receives one
     * event per generation (current/total, best fitness, eval
     * seconds); timings accumulates an "ga_eval" phase covering the
     * parallel fitness evaluations.
     */
    telemetry::ProgressSink *progress = nullptr;
    telemetry::PhaseTimings *timings = nullptr;
    /**
     * Crash safety: when checkpoint.path is set, the run saves a
     * versioned, checksummed checkpoint every checkpoint.every
     * generations (and at the final one); with checkpoint.resume an
     * existing checkpoint is loaded and the run continues from it,
     * producing results bit-identical to an uninterrupted run.  The
     * run also polls for graceful shutdown (robust/shutdown.hh) at
     * each generation boundary and, when requested, checkpoints and
     * returns early with GaResult::interrupted set.
     */
    robust::CheckpointOptions checkpoint;
};

/** Outcome of a GA run. */
struct GaResult
{
    Ipv best;
    double bestFitness = 0.0;
    /** Best fitness after each generation (convergence curve). */
    std::vector<double> history;
    /** Wall-clock seconds evaluating each generation (incl. gen 0). */
    std::vector<double> generationSeconds;
    /** The final population, best first (for dueling-set selection). */
    std::vector<SampledIpv> finalPopulation;
    /**
     * True when the run stopped early at a generation boundary
     * because shutdown was requested; best/history cover the
     * completed generations and the checkpoint on disk resumes the
     * rest.
     */
    bool interrupted = false;
    /** Generations skipped by resuming from a checkpoint. */
    unsigned resumedGenerations = 0;
};

/** Evolve an IPV for @p family against @p fitness. */
GaResult evolveIpv(const FitnessEvaluator &fitness, IpvFamily family,
                   const GaParams &params);

/**
 * Greedily choose @p n complementary vectors from candidates for a
 * DGIPPR duel: the first is the best overall; each subsequent pick
 * maximizes the mean of per-trace max speedup over the chosen set
 * (i.e. it covers the workloads the current set serves worst) —
 * standing in for the paper's "many parallel GA runs" vector farm.
 */
std::vector<Ipv> selectDuelSet(const FitnessEvaluator &fitness,
                               IpvFamily family,
                               const std::vector<Ipv> &candidates,
                               size_t n);

} // namespace gippr

#endif // GIPPR_GA_GENETIC_HH_
