/**
 * @file
 * Shared GA breeding primitives (paper, Section 4.2).
 *
 * evolveIpv and the island-model workers (src/island) must apply the
 * *same* operators in the *same* RNG-consumption order — the island
 * service's kill/resume bit-identity guarantee depends on a resumed
 * worker replaying exactly the stream an undisturbed one would have
 * drawn.  These free functions are that single definition: tournament
 * selection, single-point crossover, one-element mutation, and the
 * batched population evaluation, each consuming the Rng precisely as
 * the original in-process GA did.
 */

#ifndef GIPPR_GA_BREEDING_HH_
#define GIPPR_GA_BREEDING_HH_

#include <cstddef>
#include <vector>

#include "core/ipv.hh"
#include "ga/fitness.hh"
#include "ga/random_search.hh"
#include "telemetry/timer.hh"
#include "util/rng.hh"

namespace gippr
{

/**
 * Evaluate pop[from..] through the batched fitness API (one streaming
 * pass per trace per genome batch; see FitnessEvaluator::evaluateAll)
 * with @p threads workers.  Individuals before @p from — carried-over
 * elites — keep their fitness untouched.  Returns the wall-clock
 * seconds spent evaluating; @p timings (nullable) accumulates the
 * "ga_eval" phase.
 */
double evaluatePopulation(const FitnessEvaluator &fitness,
                          IpvFamily family,
                          std::vector<SampledIpv> &pop, size_t from,
                          unsigned threads,
                          telemetry::PhaseTimings *timings);

/** Sort best-first (stable order for equal fitness is not needed by
    evolveIpv, which never compares across runs; the island merge has
    its own deterministic tie-break). */
void sortByFitnessDesc(std::vector<SampledIpv> &pop);

/** Tournament selection: best of @p t random individuals. */
const SampledIpv &selectParent(const std::vector<SampledIpv> &pop,
                               unsigned t, Rng &rng);

/** Single-point crossover (paper: elements 0..k of one parent). */
Ipv crossover(const Ipv &a, const Ipv &b, Rng &rng);

/** With probability @p rate, replace one random element. */
Ipv mutate(Ipv v, double rate, unsigned ways, Rng &rng);

} // namespace gippr

#endif // GIPPR_GA_BREEDING_HH_
