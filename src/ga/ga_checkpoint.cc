/**
 * @file
 * Search-driver checkpoint (de)serialization.
 */

#include "ga/ga_checkpoint.hh"

#include "robust/checkpoint.hh"
#include "util/log.hh"

namespace gippr
{

namespace
{

constexpr const char *kEvolveKind = "ga-evolve";
constexpr uint32_t kEvolveVersion = 1;
constexpr const char *kRandomKind = "ga-random";
constexpr uint32_t kRandomVersion = 1;
constexpr const char *kHillKind = "ga-hillclimb";
constexpr uint32_t kHillVersion = 1;
constexpr const char *kWn1Kind = "ga-wn1";
constexpr uint32_t kWn1Version = 1;
constexpr const char *kMigrantsKind = "island-migrants";
constexpr uint32_t kMigrantsVersion = 1;
constexpr const char *kIslandKind = "island-state";
constexpr const char *kIslandFinalKind = "island-final";
constexpr uint32_t kIslandVersion = 1;

/**
 * Digest checks shared by every loader: reject a checkpoint written
 * against different training data or a different search
 * configuration with messages that say which, so an operator can
 * tell a corrupted resume from a mistaken one.
 */
void
validateDigests(const std::string &path, const std::string &what,
                uint64_t got_suite, uint64_t want_suite,
                uint64_t got_config, uint64_t want_config)
{
    if (got_suite != want_suite)
        fatal(what + " checkpoint " + path +
              " was written against a different training suite "
              "(digest mismatch); refusing to resume");
    if (got_config != want_config)
        fatal(what + " checkpoint " + path +
              " was written under a different search configuration "
              "(seed/population/operator digest mismatch); refusing "
              "to resume");
}

} // namespace

uint64_t
digestMix(uint64_t digest, uint64_t word)
{
    // FNV-1a over the word's eight bytes.
    for (int i = 0; i < 8; ++i) {
        digest ^= (word >> (8 * i)) & 0xffu;
        digest *= 0x100000001b3ULL;
    }
    return digest;
}

void
saveGaCheckpoint(const std::string &path, const GaCheckpoint &ck)
{
    robust::ByteWriter w;
    w.u64(ck.configDigest);
    w.u64(ck.suiteDigest);
    for (uint64_t word : ck.rngState)
        w.u64(word);
    w.u64(ck.generation);
    w.u32(static_cast<uint32_t>(ck.population.size()));
    for (const SampledIpv &s : ck.population) {
        w.bytes(s.ipv.entries());
        w.f64(s.fitness);
    }
    w.u32(static_cast<uint32_t>(ck.history.size()));
    for (double h : ck.history)
        w.f64(h);
    w.u32(static_cast<uint32_t>(ck.generationSeconds.size()));
    for (double s : ck.generationSeconds)
        w.f64(s);
    robust::writeCheckpointFile(path, kEvolveKind, kEvolveVersion,
                                w.data());
}

GaCheckpoint
loadGaCheckpoint(const std::string &path, uint64_t configDigest,
                 uint64_t suiteDigest)
{
    const std::string payload =
        robust::readCheckpointFile(path, kEvolveKind, kEvolveVersion);
    robust::ByteReader r(payload, path);
    GaCheckpoint ck;
    ck.configDigest = r.u64();
    ck.suiteDigest = r.u64();
    validateDigests(path, "GA", ck.suiteDigest, suiteDigest,
                    ck.configDigest, configDigest);
    for (uint64_t &word : ck.rngState)
        word = r.u64();
    ck.generation = r.u64();
    const uint32_t pop = r.u32();
    ck.population.reserve(pop);
    for (uint32_t i = 0; i < pop; ++i) {
        std::vector<uint8_t> entries = r.bytes();
        const double fitness = r.f64();
        if (!Ipv::isValidVector(entries))
            fatal("GA checkpoint " + path +
                  " holds an invalid IPV at population index " +
                  std::to_string(i));
        ck.population.push_back({Ipv(std::move(entries)), fitness});
    }
    const uint32_t hist = r.u32();
    ck.history.reserve(hist);
    for (uint32_t i = 0; i < hist; ++i)
        ck.history.push_back(r.f64());
    const uint32_t secs = r.u32();
    ck.generationSeconds.reserve(secs);
    for (uint32_t i = 0; i < secs; ++i)
        ck.generationSeconds.push_back(r.f64());
    r.expectEnd();
    return ck;
}

void
saveRandomSearchCheckpoint(const std::string &path,
                           const RandomSearchCheckpoint &ck)
{
    robust::ByteWriter w;
    w.u64(ck.configDigest);
    w.u64(ck.suiteDigest);
    w.u64(ck.done);
    w.u32(static_cast<uint32_t>(ck.scores.size()));
    for (double s : ck.scores)
        w.f64(s);
    robust::writeCheckpointFile(path, kRandomKind, kRandomVersion,
                                w.data());
}

RandomSearchCheckpoint
loadRandomSearchCheckpoint(const std::string &path,
                           uint64_t configDigest, uint64_t suiteDigest)
{
    const std::string payload =
        robust::readCheckpointFile(path, kRandomKind, kRandomVersion);
    robust::ByteReader r(payload, path);
    RandomSearchCheckpoint ck;
    ck.configDigest = r.u64();
    ck.suiteDigest = r.u64();
    validateDigests(path, "random-search", ck.suiteDigest, suiteDigest,
                    ck.configDigest, configDigest);
    ck.done = r.u64();
    const uint32_t n = r.u32();
    if (ck.done > n)
        fatal("random-search checkpoint " + path +
              " is inconsistent: claims " + std::to_string(ck.done) +
              " evaluated of " + std::to_string(n) + " stored scores");
    ck.scores.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        ck.scores.push_back(r.f64());
    r.expectEnd();
    return ck;
}

void
saveHillClimbCheckpoint(const std::string &path,
                        const HillClimbCheckpoint &ck)
{
    robust::ByteWriter w;
    w.u64(ck.configDigest);
    w.u64(ck.suiteDigest);
    w.bytes(ck.best);
    w.f64(ck.bestFitness);
    w.u64(ck.evaluations);
    w.u64(ck.steps);
    robust::writeCheckpointFile(path, kHillKind, kHillVersion,
                                w.data());
}

HillClimbCheckpoint
loadHillClimbCheckpoint(const std::string &path, uint64_t configDigest,
                        uint64_t suiteDigest)
{
    const std::string payload =
        robust::readCheckpointFile(path, kHillKind, kHillVersion);
    robust::ByteReader r(payload, path);
    HillClimbCheckpoint ck;
    ck.configDigest = r.u64();
    ck.suiteDigest = r.u64();
    validateDigests(path, "hill-climb", ck.suiteDigest, suiteDigest,
                    ck.configDigest, configDigest);
    ck.best = r.bytes();
    if (!Ipv::isValidVector(ck.best))
        fatal("hill-climb checkpoint " + path +
              " holds an invalid IPV");
    ck.bestFitness = r.f64();
    ck.evaluations = r.u64();
    ck.steps = r.u64();
    r.expectEnd();
    return ck;
}

void
saveWn1Checkpoint(const std::string &path, const Wn1Checkpoint &ck)
{
    robust::ByteWriter w;
    w.u64(ck.configDigest);
    w.u32(static_cast<uint32_t>(ck.folds.size()));
    for (const auto &[name, vectors] : ck.folds) {
        w.str(name);
        w.u32(static_cast<uint32_t>(vectors.size()));
        for (const auto &entries : vectors)
            w.bytes(entries);
    }
    robust::writeCheckpointFile(path, kWn1Kind, kWn1Version, w.data());
}

Wn1Checkpoint
loadWn1Checkpoint(const std::string &path, uint64_t configDigest)
{
    const std::string payload =
        robust::readCheckpointFile(path, kWn1Kind, kWn1Version);
    robust::ByteReader r(payload, path);
    Wn1Checkpoint ck;
    ck.configDigest = r.u64();
    if (ck.configDigest != configDigest)
        fatal("WN1 checkpoint " + path +
              " was written under a different configuration (digest "
              "mismatch); refusing to resume");
    const uint32_t folds = r.u32();
    ck.folds.reserve(folds);
    for (uint32_t i = 0; i < folds; ++i) {
        std::string name = r.str();
        const uint32_t n = r.u32();
        std::vector<std::vector<uint8_t>> vectors;
        vectors.reserve(n);
        for (uint32_t v = 0; v < n; ++v) {
            vectors.push_back(r.bytes());
            if (!Ipv::isValidVector(vectors.back()))
                fatal("WN1 checkpoint " + path +
                      " holds an invalid IPV in fold \"" + name +
                      "\"");
        }
        ck.folds.emplace_back(std::move(name), std::move(vectors));
    }
    r.expectEnd();
    return ck;
}

namespace
{

/** Shared by migrant and island-state payloads. */
void
writePopulation(robust::ByteWriter &w,
                const std::vector<SampledIpv> &pop)
{
    w.u32(static_cast<uint32_t>(pop.size()));
    for (const SampledIpv &s : pop) {
        w.bytes(s.ipv.entries());
        w.f64(s.fitness);
    }
}

std::vector<SampledIpv>
readPopulation(robust::ByteReader &r, const std::string &path,
               const std::string &what)
{
    const uint32_t n = r.u32();
    std::vector<SampledIpv> pop;
    pop.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        std::vector<uint8_t> entries = r.bytes();
        const double fitness = r.f64();
        if (!Ipv::isValidVector(entries))
            fatal(what + " " + path +
                  " holds an invalid IPV at index " +
                  std::to_string(i));
        pop.push_back({Ipv(std::move(entries)), fitness});
    }
    return pop;
}

} // namespace

void
saveIslandMigrants(const std::string &path, const IslandMigrants &m)
{
    robust::ByteWriter w;
    w.u64(m.configDigest);
    w.u32(m.island);
    w.u64(m.round);
    writePopulation(w, m.migrants);
    robust::writeCheckpointFile(path, kMigrantsKind, kMigrantsVersion,
                                w.data());
}

bool
tryLoadIslandMigrants(const std::string &path, uint64_t configDigest,
                      IslandMigrants &out)
{
    // A missing, torn, truncated, or mis-kinded file all surface as
    // readCheckpointFile/ByteReader runtime_errors; a skipped migrant
    // set is graceful degradation, so swallow them all here.
    try {
        const std::string payload = robust::readCheckpointFile(
            path, kMigrantsKind, kMigrantsVersion);
        robust::ByteReader r(payload, path);
        IslandMigrants m;
        m.configDigest = r.u64();
        if (m.configDigest != configDigest)
            return false;
        m.island = r.u32();
        m.round = r.u64();
        m.migrants = readPopulation(r, path, "island migrant file");
        r.expectEnd();
        out = std::move(m);
        return true;
    } catch (const std::runtime_error &) {
        return false;
    }
}

void
saveIslandCheckpoint(const std::string &path,
                     const IslandCheckpoint &ck, bool final)
{
    robust::ByteWriter w;
    w.u64(ck.configDigest);
    w.u64(ck.suiteDigest);
    w.u32(ck.island);
    for (uint64_t word : ck.rngState)
        w.u64(word);
    w.u64(ck.generation);
    w.u64(ck.exchangesDone);
    w.u64(ck.exchangesMissed);
    writePopulation(w, ck.population);
    w.u32(static_cast<uint32_t>(ck.history.size()));
    for (double h : ck.history)
        w.f64(h);
    w.u32(static_cast<uint32_t>(ck.generationSeconds.size()));
    for (double s : ck.generationSeconds)
        w.f64(s);
    robust::writeCheckpointFile(
        path, final ? kIslandFinalKind : kIslandKind, kIslandVersion,
        w.data());
}

IslandCheckpoint
loadIslandCheckpoint(const std::string &path, uint64_t configDigest,
                     uint64_t suiteDigest, bool final)
{
    const std::string payload = robust::readCheckpointFile(
        path, final ? kIslandFinalKind : kIslandKind, kIslandVersion);
    robust::ByteReader r(payload, path);
    IslandCheckpoint ck;
    ck.configDigest = r.u64();
    ck.suiteDigest = r.u64();
    validateDigests(path, "island", ck.suiteDigest, suiteDigest,
                    ck.configDigest, configDigest);
    ck.island = r.u32();
    for (uint64_t &word : ck.rngState)
        word = r.u64();
    ck.generation = r.u64();
    ck.exchangesDone = r.u64();
    ck.exchangesMissed = r.u64();
    ck.population = readPopulation(r, path, "island checkpoint");
    const uint32_t hist = r.u32();
    ck.history.reserve(hist);
    for (uint32_t i = 0; i < hist; ++i)
        ck.history.push_back(r.f64());
    const uint32_t secs = r.u32();
    ck.generationSeconds.reserve(secs);
    for (uint32_t i = 0; i < secs; ++i)
        ck.generationSeconds.push_back(r.f64());
    r.expectEnd();
    return ck;
}

} // namespace gippr
