/**
 * @file
 * Shared GA breeding primitives.
 */

#include "ga/breeding.hh"

#include <algorithm>

#include "util/check.hh"

namespace gippr
{

double
evaluatePopulation(const FitnessEvaluator &fitness, IpvFamily family,
                   std::vector<SampledIpv> &pop, size_t from,
                   unsigned threads, telemetry::PhaseTimings *timings)
{
    telemetry::ScopedTimer timer(timings, "ga_eval");
    std::vector<Ipv> ipvs;
    ipvs.reserve(pop.size() - from);
    for (size_t i = from; i < pop.size(); ++i)
        ipvs.push_back(pop[i].ipv);
    const std::vector<double> scores =
        fitness.evaluateAll(ipvs, family, threads);
    for (size_t i = from; i < pop.size(); ++i)
        pop[i].fitness = scores[i - from];
    double seconds = timer.elapsed();
    timer.stop();
    return seconds;
}

void
sortByFitnessDesc(std::vector<SampledIpv> &pop)
{
    std::sort(pop.begin(), pop.end(),
              [](const SampledIpv &a, const SampledIpv &b) {
                  return a.fitness > b.fitness;
              });
}

const SampledIpv &
selectParent(const std::vector<SampledIpv> &pop, unsigned t, Rng &rng)
{
    const SampledIpv *best = &pop[rng.nextBounded(pop.size())];
    for (unsigned i = 1; i < t; ++i) {
        const SampledIpv &cand = pop[rng.nextBounded(pop.size())];
        if (cand.fitness > best->fitness)
            best = &cand;
    }
    return *best;
}

Ipv
crossover(const Ipv &a, const Ipv &b, Rng &rng)
{
    const auto &ea = a.entries();
    const auto &eb = b.entries();
    GIPPR_CHECK(ea.size() == eb.size());
    size_t cut = 1 + rng.nextBounded(ea.size() - 1);
    std::vector<uint8_t> child(ea.begin(),
                               ea.begin() + static_cast<long>(cut));
    child.insert(child.end(), eb.begin() + static_cast<long>(cut),
                 eb.end());
    return Ipv(std::move(child));
}

Ipv
mutate(Ipv v, double rate, unsigned ways, Rng &rng)
{
    if (!rng.nextBool(rate))
        return v;
    std::vector<uint8_t> entries = v.entries();
    size_t idx = rng.nextBounded(entries.size());
    entries[idx] = static_cast<uint8_t>(rng.nextBounded(ways));
    return Ipv(std::move(entries));
}

} // namespace gippr
