/**
 * @file
 * Uniform random exploration of the IPV design space (paper, Section
 * 4.1 and Figure 1): sample IPVs uniformly, evaluate each with the
 * fitness function, and report the sorted speedups.  The paper's
 * observation — most random IPVs lose to LRU, a thin right tail wins a
 * few percent — is the motivation for the genetic search.
 */

#ifndef GIPPR_GA_RANDOM_SEARCH_HH_
#define GIPPR_GA_RANDOM_SEARCH_HH_

#include <vector>

#include "core/ipv.hh"
#include "ga/fitness.hh"
#include "robust/checkpoint.hh"
#include "util/rng.hh"

namespace gippr
{

/** One sampled point of the design space. */
struct SampledIpv
{
    Ipv ipv;
    double fitness = 0.0;
};

/** Draw a uniformly random IPV for @p ways. */
Ipv randomIpv(unsigned ways, Rng &rng);

/**
 * Sample @p count random IPVs, evaluate each, and return them sorted
 * by ascending fitness (Figure 1's x-axis ordering).
 *
 * With @p ckpt enabled the evaluation proceeds in chunks, saving a
 * checkpoint after each; a resumed run re-draws the same samples
 * (the draw is a pure function of the seed) and skips the evaluated
 * prefix, so the returned vector is bit-identical to an
 * uninterrupted run's.  When shutdown is requested the driver saves
 * and throws robust::Interrupted.
 *
 * @param threads  worker threads for fitness evaluation (>= 1)
 */
std::vector<SampledIpv>
randomSearch(const FitnessEvaluator &fitness, IpvFamily family,
             size_t count, uint64_t seed, unsigned threads = 1,
             const robust::CheckpointOptions &ckpt = {});

} // namespace gippr

#endif // GIPPR_GA_RANDOM_SEARCH_HH_
