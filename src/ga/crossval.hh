/**
 * @file
 * Workload-neutral (WN1) and workload-inclusive (WI) vector evolution
 * (paper, Section 4.4).
 *
 * WI trains one GA over every workload's traces — the optimistic
 * methodology.  WN1 is leave-one-out cross-validation: for each
 * workload, vectors are evolved using only the *other* workloads'
 * traces, eliminating training bias when that workload is evaluated.
 * The paper reports both and finds the difference small (e.g. 5.61%
 * vs 5.66% geomean speedup for the 4-vector configuration).
 */

#ifndef GIPPR_GA_CROSSVAL_HH_
#define GIPPR_GA_CROSSVAL_HH_

#include <map>
#include <string>
#include <vector>

#include "ga/fitness.hh"
#include "ga/genetic.hh"

namespace gippr
{

/** Traces of one named workload (one entry per simpoint). */
struct WorkloadTraces
{
    std::string name;
    std::vector<FitnessTrace> traces;
};

/**
 * Workload-inclusive evolution: one GA over all traces, then greedy
 * selection of an @p n_vectors duel set from the final population.
 */
std::vector<Ipv> evolveWi(const CacheConfig &llc,
                          const std::vector<WorkloadTraces> &workloads,
                          IpvFamily family, size_t n_vectors,
                          const GaParams &params);

/** Per-workload vector sets from a WN1 run. */
using Wn1Vectors = std::map<std::string, std::vector<Ipv>>;

/**
 * WN1 evolution: for each workload, evolve on every other workload's
 * traces and select its duel set from that run.  The returned map has
 * one entry per workload; params.seed is perturbed per fold so folds
 * explore independently.
 */
Wn1Vectors evolveWn1(const CacheConfig &llc,
                     const std::vector<WorkloadTraces> &workloads,
                     IpvFamily family, size_t n_vectors,
                     const GaParams &params);

} // namespace gippr

#endif // GIPPR_GA_CROSSVAL_HH_
