/**
 * @file
 * Suite definition.
 */

#include "workloads/suite.hh"

#include <cassert>

#include "util/log.hh"

namespace gippr
{

namespace
{

/** Distinct address regions per simpoint, far apart. */
uint64_t
regionFor(unsigned workload_idx, unsigned simpoint_idx)
{
    // 1 TB apart in block units (2^24 blocks = 1 GB of 64B lines).
    return (static_cast<uint64_t>(workload_idx) * 8 + simpoint_idx + 1)
           << 26;
}

uint64_t
pcFor(unsigned workload_idx, unsigned simpoint_idx)
{
    return 0x400000 + (static_cast<uint64_t>(workload_idx) * 8 +
                       simpoint_idx) * 0x1000;
}

} // namespace

SyntheticSuite::SyntheticSuite(SuiteParams params)
    : params_(params)
{
    const uint64_t C = params_.llcBlocks; // LLC capacity in blocks
    const uint64_t N = params_.accessesPerSimpoint;
    const uint64_t seed0 = params_.baseSeed;
    unsigned widx = 0;

    // Helper to register one workload with a list of generator makers.
    auto add = [&](const std::string &name,
                   std::vector<std::pair<
                       std::function<std::unique_ptr<AccessGenerator>(
                           GenParams)>,
                       double>> sims) {
        WorkloadSpec spec;
        spec.name = name;
        spec.capacityBlocks = C;
        unsigned sidx = 0;
        for (auto &sim : sims) {
            GenParams gp;
            gp.regionBase = regionFor(widx, sidx);
            gp.pcBase = pcFor(widx, sidx);
            SimpointSpec sp;
            auto maker = sim.first;
            sp.make = [maker, gp]() { return maker(gp); };
            sp.accesses = N;
            sp.weight = sim.second;
            sp.seed = seed0 + widx * 131 + sidx * 7;
            spec.simpoints.push_back(std::move(sp));
            ++sidx;
        }
        specs_.push_back(std::move(spec));
        ++widx;
    };

    using G = GenParams;

    // ---- Streaming (zero reuse; insertion policy is everything) ----
    add("stream_pure",
        {{[C](G gp) {
              return std::make_unique<StreamGenerator>(gp, 1, 64 * C);
          },
          1.0}});
    add("stream_strided",
        {{[C](G gp) {
              return std::make_unique<StreamGenerator>(gp, 4, 64 * C);
          },
          1.0}});

    // ---- Loops over fixed working sets --------------------------------
    add("loop_fit",
        {{[C](G gp) {
              return std::make_unique<LoopGenerator>(gp, (C * 6) / 10);
          },
          1.0}});
    add("loop_thrash",
        {{[C](G gp) {
              return std::make_unique<LoopGenerator>(gp, (C * 5) / 4);
          },
          1.0}});
    add("loop_thrash2x",
        {{[C](G gp) {
              return std::make_unique<LoopGenerator>(gp, 2 * C);
          },
          1.0}});
    add("loop_l2fit",
        {{[C](G gp) {
              // Fits comfortably in the L2: near-zero LLC demand.
              return std::make_unique<LoopGenerator>(gp, C / 8);
          },
          1.0}});

    // ---- Pointer chasing ----------------------------------------------
    add("chase_small",
        {{[C](G gp) {
              return std::make_unique<PointerChaseGenerator>(gp,
                                                             (C * 3) / 4,
                                                             97);
          },
          1.0}});
    add("chase_medium",
        {{[C](G gp) {
              return std::make_unique<PointerChaseGenerator>(
                  gp, (C * 12) / 10, 131);
          },
          1.0}});
    add("chase_large",
        {{[C](G gp) {
              return std::make_unique<PointerChaseGenerator>(gp, 4 * C,
                                                             173);
          },
          1.0}});

    // ---- Skewed popularity --------------------------------------------
    add("zipf_hot",
        {{[C](G gp) {
              return std::make_unique<ZipfGenerator>(gp, 4 * C, 0.9, 11);
          },
          1.0}});
    add("zipf_flat",
        {{[C](G gp) {
              return std::make_unique<ZipfGenerator>(gp, 8 * C, 0.5, 13);
          },
          1.0}});
    add("zipf_twophase",
        {{[C](G gp) {
              return std::make_unique<ZipfGenerator>(gp, 2 * C, 1.1, 17);
          },
          0.7},
         {[C](G gp) {
              return std::make_unique<ZipfGenerator>(gp, 6 * C, 0.6, 19);
          },
          0.3}});

    // ---- Hot set + pollution ------------------------------------------
    add("hotcold_stream",
        {{[C](G gp) {
              return std::make_unique<HotColdGenerator>(gp, C / 4, 0.6,
                                                        64 * C);
          },
          1.0}});
    add("hotcold_scan",
        {{[C](G gp) {
              return std::make_unique<HotColdGenerator>(gp, C / 2, 0.75,
                                                        2 * C);
          },
          1.0}});
    add("hotcold_heavy",
        {{[C](G gp) {
              return std::make_unique<HotColdGenerator>(gp, (C * 3) / 4,
                                                        0.5, 16 * C);
          },
          1.0}});

    // ---- Stencils ------------------------------------------------------
    add("stencil_rows",
        {{[C](G gp) {
              return std::make_unique<StencilGenerator>(gp, C / 16, 24);
          },
          1.0}});
    add("stencil_wide",
        {{[C](G gp) {
              return std::make_unique<StencilGenerator>(gp, C / 2, 6);
          },
          1.0}});

    // ---- Explicit reuse-distance profiles ------------------------------
    using Band = SdProfileGenerator::Band;
    add("sd_bimodal",
        {{[C](G gp) {
              // Mass just inside the L2 shadow plus mass just beyond
              // the LLC: the classic shape where MRU insertion loses.
              std::vector<Band> bands = {
                  {16, C / 16, 3.0},
                  {(C * 5) / 4, 2 * C, 4.0},
              };
              return std::make_unique<SdProfileGenerator>(gp, bands,
                                                          1.0);
          },
          1.0}});
    add("sd_uniform",
        {{[C](G gp) {
              std::vector<Band> bands = {{1, 2 * C, 6.0}};
              return std::make_unique<SdProfileGenerator>(gp, bands,
                                                          1.0);
          },
          1.0}});
    add("sd_heavytail",
        {{[C](G gp) {
              std::vector<Band> bands = {
                  {1, 64, 6.0},
                  {65, C / 2, 2.0},
                  {C / 2 + 1, 4 * C, 1.5},
              };
              return std::make_unique<SdProfileGenerator>(gp, bands,
                                                          0.5);
          },
          1.0}});
    add("sd_lrufriendly",
        {{[C](G gp) {
              // Reuse safely inside capacity under real cold-stream
              // pressure (~30%): LRU is near-optimal, and policies
              // that evict early (random IPVs, aggressive demotion)
              // forfeit hits — the majority behaviour of SPEC under
              // the paper's 4MB LLC.
              std::vector<Band> bands = {
                  {C / 4, (C * 5) / 8, 6.0},
              };
              return std::make_unique<SdProfileGenerator>(gp, bands,
                                                          2.5);
          },
          1.0}});
    add("sd_nearcap",
        {{[C](G gp) {
              // Reuse just under capacity: LRU barely holds on; any
              // mismanagement forfeits the hits.
              std::vector<Band> bands = {
                  {C / 2, (C * 15) / 16, 8.0},
              };
              return std::make_unique<SdProfileGenerator>(gp, bands,
                                                          0.5);
          },
          1.0}});
    add("sd_midrange",
        {{[C](G gp) {
              // Almost everything reusable if protected for long
              // enough: PDP's sweet spot.
              std::vector<Band> bands = {
                  {C / 2, (C * 9) / 8, 8.0},
              };
              return std::make_unique<SdProfileGenerator>(gp, bands,
                                                          1.0);
          },
          1.0}});

    // ---- Phase-changing workloads (set-dueling must adapt) -------------
    add("phase_loopstream",
        {{[C, N](G gp) {
              std::vector<PhasedGenerator::Phase> phases;
              GenParams gp_a = gp;
              GenParams gp_b = gp;
              gp_b.regionBase += 32 * C;
              gp_b.pcBase += 0x100;
              phases.push_back({std::make_unique<LoopGenerator>(
                                    gp_a, (C * 7) / 10),
                                N / 8});
              phases.push_back({std::make_unique<StreamGenerator>(
                                    gp_b, 1, 64 * C),
                                N / 8});
              return std::make_unique<PhasedGenerator>(std::move(phases));
          },
          1.0}});
    add("phase_thrashzipf",
        {{[C, N](G gp) {
              std::vector<PhasedGenerator::Phase> phases;
              GenParams gp_a = gp;
              GenParams gp_b = gp;
              gp_b.regionBase += 32 * C;
              gp_b.pcBase += 0x100;
              phases.push_back({std::make_unique<LoopGenerator>(
                                    gp_a, (C * 3) / 2),
                                N / 6});
              phases.push_back({std::make_unique<ZipfGenerator>(
                                    gp_b, 2 * C, 0.95, 23),
                                N / 6});
              return std::make_unique<PhasedGenerator>(std::move(phases));
          },
          1.0}});

    // ---- Mixes ----------------------------------------------------------
    add("mix_streamchase",
        {{[C](G gp) {
              std::vector<MixGenerator::Component> comps;
              GenParams gp_a = gp;
              GenParams gp_b = gp;
              gp_b.regionBase += 32 * C;
              gp_b.pcBase += 0x100;
              comps.push_back({std::make_unique<StreamGenerator>(
                                   gp_a, 1, 64 * C),
                               0.5});
              comps.push_back({std::make_unique<PointerChaseGenerator>(
                                   gp_b, C / 2, 211),
                               0.5});
              return std::make_unique<MixGenerator>(std::move(comps));
          },
          1.0}});
    add("mix_zipfscan",
        {{[C](G gp) {
              std::vector<MixGenerator::Component> comps;
              GenParams gp_a = gp;
              GenParams gp_b = gp;
              gp_b.regionBase += 32 * C;
              gp_b.pcBase += 0x100;
              comps.push_back({std::make_unique<ZipfGenerator>(
                                   gp_a, 2 * C, 1.0, 29),
                               0.7});
              comps.push_back({std::make_unique<StreamGenerator>(
                                   gp_b, 1, 32 * C),
                               0.3});
              return std::make_unique<MixGenerator>(std::move(comps));
          },
          1.0}});

    // ---- Odds and ends ---------------------------------------------------
    add("write_heavy",
        {{[C](G gp) {
              GenParams gp_w = gp;
              gp_w.writeFrac = 0.5;
              return std::make_unique<LoopGenerator>(gp_w, (C * 9) / 10);
          },
          1.0}});
    add("tiny_ws",
        {{[C](G gp) {
              // Essentially lives in the L1/L2; the LLC barely matters.
              return std::make_unique<LoopGenerator>(gp, C / 64);
          },
          1.0}});
    add("multiphase_mix",
        {{[C](G gp) {
              return std::make_unique<LoopGenerator>(gp, (C * 11) / 10);
          },
          0.5},
         {[C](G gp) {
              return std::make_unique<StreamGenerator>(gp, 1, 64 * C);
          },
          0.3},
         {[C](G gp) {
              return std::make_unique<ZipfGenerator>(gp, 3 * C, 0.8, 37);
          },
          0.2}});
}

const WorkloadSpec &
SyntheticSuite::spec(const std::string &name) const
{
    for (const auto &s : specs_)
        if (s.name == name)
            return s;
    fatal("no such workload in suite: " + name);
}

Workload
SyntheticSuite::materialize(const WorkloadSpec &spec)
{
    Workload w(spec.name);
    for (const auto &sp : spec.simpoints) {
        auto gen = sp.make();
        Rng rng(sp.seed);
        auto trace = std::make_shared<Trace>(
            generateTrace(*gen, sp.accesses, rng));
        w.addSimpoint(std::move(trace), sp.weight);
    }
    return w;
}

std::vector<std::string>
SyntheticSuite::names() const
{
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const auto &s : specs_)
        out.push_back(s.name);
    return out;
}

std::vector<WorkloadSpec>
kvCacheFamily(SuiteParams params)
{
    const uint64_t C = params.llcBlocks;
    const uint64_t N = params.accessesPerSimpoint;
    const uint64_t seed0 = params.baseSeed;
    using Tenant = KvCacheGenerator::Tenant;

    std::vector<WorkloadSpec> specs;
    unsigned widx = 64; // region indices clear of the 30-suite range

    auto add = [&](const std::string &name,
                   std::function<std::unique_ptr<AccessGenerator>(
                       GenParams, uint64_t)> maker) {
        GenParams gp;
        gp.regionBase = regionFor(widx, 0);
        gp.pcBase = pcFor(widx, 0);
        SimpointSpec sp;
        uint64_t seed = seed0 + 0x4b00 + widx * 131;
        sp.make = [maker, gp, seed]() { return maker(gp, seed); };
        sp.accesses = N;
        sp.weight = 1.0;
        sp.seed = seed;
        WorkloadSpec spec;
        spec.name = name;
        spec.capacityBlocks = C;
        spec.simpoints.push_back(std::move(sp));
        specs.push_back(std::move(spec));
        ++widx;
    };

    // Four tenants with YCSB-style skews and unequal request shares.
    add("kv_zipf_4t", [C](GenParams gp, uint64_t seed) {
        std::vector<Tenant> t = {{C / 2, 0.99, 4.0, 0.10},
                                 {C, 0.80, 2.0, 0.20},
                                 {2 * C, 0.70, 1.0, 0.30},
                                 {4 * C, 0.50, 1.0, 0.05}};
        return std::make_unique<KvCacheGenerator>(gp, std::move(t),
                                                  seed);
    });
    // One dominant hot tenant against three cold long-tail tenants.
    add("kv_hot_tenant", [C](GenParams gp, uint64_t seed) {
        std::vector<Tenant> t = {{C / 2, 0.99, 8.0, 0.10},
                                 {4 * C, 0.20, 1.0, 0.20},
                                 {4 * C, 0.20, 1.0, 0.20},
                                 {4 * C, 0.20, 1.0, 0.20}};
        return std::make_unique<KvCacheGenerator>(gp, std::move(t),
                                                  seed);
    });
    // TTL-style key churn: the rank->block map rotates 8 times.
    add("kv_churn", [C, N](GenParams gp, uint64_t seed) {
        std::vector<Tenant> t = {{C, 0.90, 3.0, 0.15},
                                 {2 * C, 0.60, 1.0, 0.25}};
        return std::make_unique<KvCacheGenerator>(gp, std::move(t),
                                                  seed, N / 8);
    });
    // A small hot tenant polluted by a near-uniform huge tenant.
    add("kv_scan_victim", [C](GenParams gp, uint64_t seed) {
        std::vector<Tenant> t = {{C / 4, 0.95, 2.0, 0.10},
                                 {16 * C, 0.05, 1.0, 0.00}};
        return std::make_unique<KvCacheGenerator>(gp, std::move(t),
                                                  seed);
    });

    return specs;
}

std::vector<WorkloadSpec>
phaseShiftFamily(SuiteParams params)
{
    const uint64_t C = params.llcBlocks;
    const uint64_t N = params.accessesPerSimpoint;
    const uint64_t seed0 = params.baseSeed;
    using Phase = PhasedGenerator::Phase;

    std::vector<WorkloadSpec> specs;
    unsigned widx = 80; // clear of the 30-suite and the KV family

    auto add = [&](const std::string &name,
                   std::function<std::unique_ptr<AccessGenerator>(
                       GenParams, uint64_t)> maker) {
        GenParams gp;
        gp.regionBase = regionFor(widx, 0);
        gp.pcBase = pcFor(widx, 0);
        SimpointSpec sp;
        uint64_t seed = seed0 + 0x9500 + widx * 131;
        sp.make = [maker, gp, seed]() { return maker(gp, seed); };
        sp.accesses = N;
        sp.weight = 1.0;
        sp.seed = seed;
        WorkloadSpec spec;
        spec.name = name;
        spec.capacityBlocks = C;
        spec.simpoints.push_back(std::move(sp));
        specs.push_back(std::move(spec));
        ++widx;
    };

    // Each phase gets its own region and PC base so a regime change is
    // also an address-space change (the working-set trigger's food).
    auto phaseParams = [C](GenParams gp, unsigned phase) {
        gp.regionBase += static_cast<uint64_t>(phase) * 64 * C;
        gp.pcBase += static_cast<uint64_t>(phase) * 0x100;
        return gp;
    };

    // The flagship: scan -> skewed Zipf -> thrashing loop -> scan.
    // Every regime has a different best-in-library policy (bypass-ish
    // insertion for the scans, protection for the Zipf core, LIP-like
    // anti-thrash for the loop), so no static arm wins all four.
    add("ps_quad", [C, N, phaseParams](GenParams gp, uint64_t seed) {
        const uint64_t L = N / 4;
        std::vector<Phase> ph;
        ph.push_back({std::make_unique<StreamGenerator>(
                          phaseParams(gp, 0), 1, 64 * C),
                      L});
        ph.push_back({std::make_unique<ZipfGenerator>(
                          phaseParams(gp, 1), 2 * C, 1.05, seed),
                      L});
        ph.push_back({std::make_unique<LoopGenerator>(
                          phaseParams(gp, 2), (C * 5) / 4),
                      L});
        ph.push_back({std::make_unique<StreamGenerator>(
                          phaseParams(gp, 3), 1, 64 * C),
                      L});
        return std::make_unique<PhasedGenerator>(std::move(ph));
    });
    // Cache-friendly loop against a big skewless-ish Zipf, twice.
    add("ps_loop_zipf",
        [C, N, phaseParams](GenParams gp, uint64_t seed) {
            const uint64_t L = N / 4;
            std::vector<Phase> ph;
            ph.push_back({std::make_unique<LoopGenerator>(
                              phaseParams(gp, 0), (C * 6) / 10),
                          L});
            ph.push_back({std::make_unique<ZipfGenerator>(
                              phaseParams(gp, 1), 4 * C, 0.9, seed),
                          L});
            ph.push_back({std::make_unique<LoopGenerator>(
                              phaseParams(gp, 2), (C * 6) / 10),
                          L});
            ph.push_back({std::make_unique<ZipfGenerator>(
                              phaseParams(gp, 3), 4 * C, 0.9,
                              seed + 1),
                          L});
            return std::make_unique<PhasedGenerator>(std::move(ph));
        });
    // Identical access statistics, shifting address regions: the miss
    // rate barely moves, only the working-set signature sees it.
    add("ps_zipf_drift",
        [C, N, phaseParams](GenParams gp, uint64_t seed) {
            const uint64_t L = N / 4;
            std::vector<Phase> ph;
            for (unsigned p = 0; p < 4; ++p) {
                ph.push_back({std::make_unique<ZipfGenerator>(
                                  phaseParams(gp, p), 2 * C, 0.9,
                                  seed + p),
                              L});
            }
            return std::make_unique<PhasedGenerator>(std::move(ph));
        });
    // Near-zero LLC demand, then a sudden thrashing storm.
    add("ps_calm_storm",
        [C, N, phaseParams](GenParams gp, uint64_t seed) {
            (void)seed;
            std::vector<Phase> ph;
            ph.push_back({std::make_unique<LoopGenerator>(
                              phaseParams(gp, 0), C / 8),
                          N / 2});
            ph.push_back({std::make_unique<LoopGenerator>(
                              phaseParams(gp, 1), 2 * C),
                          N / 2});
            return std::make_unique<PhasedGenerator>(std::move(ph));
        });

    return specs;
}

} // namespace gippr
