/**
 * @file
 * Synthetic access generator implementations.
 */

#include "util/check.hh"
#include "workloads/generators.hh"

#include "util/log.hh"

namespace gippr
{

namespace
{

/** Sample an instruction gap with mean roughly @p mean_gap. */
uint32_t
sampleGap(Rng &rng, uint32_t mean_gap)
{
    if (mean_gap <= 1)
        return 1;
    // 1 + geometric with mean (mean_gap - 1).
    double p = 1.0 / static_cast<double>(mean_gap);
    uint64_t g = rng.nextGeometric(p);
    if (g > 1000)
        g = 1000; // keep gaps bounded for the CPU model
    return static_cast<uint32_t>(1 + g);
}

/** Mix a 64-bit value (splitmix-style finalizer). */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

MemRecord
AccessGenerator::makeRecord(uint64_t block, uint64_t pc, uint32_t gap,
                            bool write)
{
    MemRecord r;
    r.addr = block * kBlockBytes;
    r.pc = pc;
    r.instGap = gap;
    r.isWrite = write;
    return r;
}

StreamGenerator::StreamGenerator(const GenParams &params, uint64_t stride,
                                 uint64_t wrap)
    : params_(params), stride_(stride), wrap_(wrap)
{
    GIPPR_CHECK(stride_ >= 1);
    GIPPR_CHECK(wrap_ >= 1);
}

MemRecord
StreamGenerator::next(Rng &rng)
{
    uint64_t block = params_.regionBase + cursor_;
    cursor_ = (cursor_ + stride_) % wrap_;
    return makeRecord(block, params_.pcBase,
                      sampleGap(rng, params_.meanGap),
                      rng.nextBool(params_.writeFrac));
}

LoopGenerator::LoopGenerator(const GenParams &params, uint64_t blocks)
    : params_(params), blocks_(blocks)
{
    GIPPR_CHECK(blocks_ >= 1);
}

MemRecord
LoopGenerator::next(Rng &rng)
{
    uint64_t block = params_.regionBase + cursor_;
    cursor_ = (cursor_ + 1) % blocks_;
    // Two PCs: one for the bulk of the loop, one for the row tail,
    // so signature policies see a non-trivial PC distribution.
    uint64_t pc = params_.pcBase + (cursor_ % 64 == 0 ? 8 : 0);
    return makeRecord(block, pc, sampleGap(rng, params_.meanGap),
                      rng.nextBool(params_.writeFrac));
}

PointerChaseGenerator::PointerChaseGenerator(const GenParams &params,
                                             uint64_t blocks,
                                             uint64_t seed)
    : params_(params)
{
    GIPPR_CHECK(blocks >= 2);
    GIPPR_CHECK(blocks <= UINT32_MAX);
    // Sattolo's algorithm: a single cycle covering every node, so the
    // chase visits all blocks before repeating (reuse distance ==
    // working-set size, the mcf-like worst case).
    nextNode_.resize(blocks);
    for (uint64_t i = 0; i < blocks; ++i)
        nextNode_[i] = static_cast<uint32_t>(i);
    Rng perm_rng(seed);
    for (uint64_t i = blocks - 1; i >= 1; --i) {
        uint64_t j = perm_rng.nextBounded(i);
        std::swap(nextNode_[i], nextNode_[j]);
    }
}

MemRecord
PointerChaseGenerator::next(Rng &rng)
{
    uint64_t block = params_.regionBase + current_;
    current_ = nextNode_[current_];
    return makeRecord(block, params_.pcBase,
                      sampleGap(rng, params_.meanGap),
                      rng.nextBool(params_.writeFrac));
}

ZipfGenerator::ZipfGenerator(const GenParams &params, uint64_t blocks,
                             double theta, uint64_t seed)
    : params_(params), sampler_(blocks, theta), seed_(seed)
{
}

MemRecord
ZipfGenerator::next(Rng &rng)
{
    uint64_t rank = sampler_.sample(rng);
    // Scatter ranks over the region so popular blocks are not
    // physically adjacent (avoids set-index pathologies).
    uint64_t block =
        params_.regionBase + mix64(rank ^ seed_) % sampler_.n();
    uint64_t pc = params_.pcBase + (rank % 8) * 4;
    return makeRecord(block, pc, sampleGap(rng, params_.meanGap),
                      rng.nextBool(params_.writeFrac));
}

HotColdGenerator::HotColdGenerator(const GenParams &params,
                                   uint64_t hot_blocks, double hot_frac,
                                   uint64_t cold_wrap)
    : params_(params), hotBlocks_(hot_blocks), hotFrac_(hot_frac),
      coldWrap_(cold_wrap)
{
    GIPPR_CHECK(hotBlocks_ >= 1);
    GIPPR_CHECK(coldWrap_ >= 1);
    GIPPR_CHECK(hotFrac_ >= 0.0 && hotFrac_ <= 1.0);
}

MemRecord
HotColdGenerator::next(Rng &rng)
{
    if (rng.nextBool(hotFrac_)) {
        uint64_t block = params_.regionBase + rng.nextBounded(hotBlocks_);
        return makeRecord(block, params_.pcBase,
                          sampleGap(rng, params_.meanGap),
                          rng.nextBool(params_.writeFrac));
    }
    uint64_t block = params_.regionBase + hotBlocks_ + coldCursor_;
    coldCursor_ = (coldCursor_ + 1) % coldWrap_;
    // The cold stream has its own PC, the classic zero-reuse signature.
    return makeRecord(block, params_.pcBase + 64,
                      sampleGap(rng, params_.meanGap),
                      rng.nextBool(params_.writeFrac));
}

StencilGenerator::StencilGenerator(const GenParams &params,
                                   uint64_t row_blocks, uint64_t rows)
    : params_(params), rowBlocks_(row_blocks), rows_(rows)
{
    GIPPR_CHECK(rowBlocks_ >= 1);
    GIPPR_CHECK(rows_ >= 3);
}

MemRecord
StencilGenerator::next(Rng &rng)
{
    // For grid point (r, c) emit north, center, south in successive
    // calls: reuse distance between vertical neighbours is one row.
    uint64_t r = cursor_ / rowBlocks_;
    uint64_t c = cursor_ % rowBlocks_;
    uint64_t row;
    uint64_t pc;
    switch (phase_) {
      case 0:
        row = (r + rows_ - 1) % rows_;
        pc = params_.pcBase;
        break;
      case 1:
        row = r;
        pc = params_.pcBase + 4;
        break;
      default:
        row = (r + 1) % rows_;
        pc = params_.pcBase + 8;
        break;
    }
    if (++phase_ == 3) {
        phase_ = 0;
        cursor_ = (cursor_ + 1) % (rowBlocks_ * rows_);
    }
    uint64_t block = params_.regionBase + row * rowBlocks_ + c;
    // The center access writes (Jacobi-style update).
    bool write = phase_ == 2 && rng.nextBool(0.5);
    return makeRecord(block, pc, sampleGap(rng, params_.meanGap), write);
}

SdProfileGenerator::SdProfileGenerator(const GenParams &params,
                                       std::vector<Band> bands,
                                       double new_weight)
    : params_(params), bands_(std::move(bands)), newWeight_(new_weight)
{
    GIPPR_CHECK(newWeight_ >= 0.0);
    totalWeight_ = newWeight_;
    uint64_t max_hi = 0;
    for (const Band &b : bands_) {
        GIPPR_CHECK(b.lo <= b.hi);
        GIPPR_CHECK(b.weight >= 0.0);
        totalWeight_ += b.weight;
        max_hi = std::max(max_hi, b.hi);
    }
    GIPPR_CHECK(totalWeight_ > 0.0);
    history_.assign(max_hi + 2, 0);
}

MemRecord
SdProfileGenerator::next(Rng &rng)
{
    double pick = rng.nextDouble() * totalWeight_;
    uint64_t block;
    uint64_t pc = params_.pcBase;
    const Band *chosen = nullptr;
    double acc = newWeight_;
    if (pick >= acc) {
        for (size_t i = 0; i < bands_.size(); ++i) {
            acc += bands_[i].weight;
            if (pick < acc) {
                chosen = &bands_[i];
                pc = params_.pcBase + 4 * (i + 1);
                break;
            }
        }
    }
    if (chosen == nullptr || emitted_ == 0) {
        // Compulsory reference to a brand-new block.
        block = params_.regionBase + nextNew_++;
    } else {
        // Re-touch the block emitted `dist` references ago (dist == 1
        // is the immediately preceding reference).  A chosen ring slot
        // may hold a block that was *also* emitted more recently,
        // which would produce a shorter observed distance than the
        // band requests; redraw a few times to keep the realized
        // profile faithful.
        uint64_t max_dist =
            std::min<uint64_t>(emitted_, history_.size() - 1);
        uint64_t lo = std::max<uint64_t>(chosen->lo, 1);
        lo = std::min(lo, max_dist);
        uint64_t hi = std::min(std::max<uint64_t>(chosen->hi, 1),
                               max_dist);
        block = history_[(emitted_ -
                          (lo + rng.nextBounded(hi - lo + 1))) %
                         history_.size()];
        for (int attempt = 0;
             attempt < 8 && emitted_ - lastEmit_[block] < lo;
             ++attempt) {
            block = history_[(emitted_ -
                              (lo + rng.nextBounded(hi - lo + 1))) %
                             history_.size()];
        }
    }
    history_[emitted_ % history_.size()] = block;
    lastEmit_[block] = emitted_;
    // Prune the last-emission map once it far exceeds the ring.
    if (lastEmit_.size() > 4 * history_.size()) {
        std::unordered_map<uint64_t, uint64_t> kept;
        kept.reserve(history_.size() * 2);
        for (uint64_t b : history_) {
            auto it = lastEmit_.find(b);
            if (it != lastEmit_.end())
                kept.emplace(it->first, it->second);
        }
        lastEmit_ = std::move(kept);
    }
    ++emitted_;
    return makeRecord(block, pc, sampleGap(rng, params_.meanGap),
                      rng.nextBool(params_.writeFrac));
}

PhasedGenerator::PhasedGenerator(std::vector<Phase> phases)
    : phases_(std::move(phases))
{
    GIPPR_CHECK(!phases_.empty());
    for (const Phase &p : phases_) {
        GIPPR_CHECK(p.gen != nullptr);
        GIPPR_CHECK(p.length >= 1);
    }
}

MemRecord
PhasedGenerator::next(Rng &rng)
{
    if (emitted_ >= phases_[current_].length) {
        emitted_ = 0;
        current_ = (current_ + 1) % phases_.size();
    }
    ++emitted_;
    return phases_[current_].gen->next(rng);
}

KvCacheGenerator::KvCacheGenerator(const GenParams &params,
                                   std::vector<Tenant> tenants,
                                   uint64_t seed, uint64_t churn_every)
    : params_(params), seed_(seed), churnEvery_(churn_every)
{
    GIPPR_CHECK(!tenants.empty());
    double cum = 0.0;
    uint64_t base = params_.regionBase;
    for (const Tenant &t : tenants) {
        GIPPR_CHECK(t.keys >= 1);
        GIPPR_CHECK(t.weight > 0.0);
        tenants_.push_back({ZipfSampler(t.keys, t.theta), base,
                            t.writeFrac});
        cum += t.weight;
        cumWeight_.push_back(cum);
        // Disjoint per-tenant ranges, padded so neighbouring tenants
        // never alias even after the scatter hash's modulo.
        base += t.keys + 4096;
    }
}

MemRecord
KvCacheGenerator::next(Rng &rng)
{
    double pick = rng.nextDouble() * cumWeight_.back();
    size_t t = 0;
    while (t + 1 < tenants_.size() && pick >= cumWeight_[t])
        ++t;
    const TenantState &ts = tenants_[t];
    uint64_t rank = ts.sampler.sample(rng);
    // Epoch-salted scatter: with churn enabled each epoch maps ranks
    // to a fresh block set, so the previous epoch's keys go cold.
    uint64_t epoch = churnEvery_ ? emitted_ / churnEvery_ : 0;
    ++emitted_;
    uint64_t block =
        ts.base + mix64(rank ^ seed_ ^
                        (epoch * 0x9e3779b97f4a7c15ULL)) %
                      ts.sampler.n();
    // Stable per-tenant PCs, split by hot/cold rank band so signature
    // policies can tell tenants and popularity classes apart.
    uint64_t pc = params_.pcBase + t * 64 + (rank % 8) * 4;
    return makeRecord(block, pc, sampleGap(rng, params_.meanGap),
                      rng.nextBool(ts.writeFrac));
}

MixGenerator::MixGenerator(std::vector<Component> components)
    : components_(std::move(components))
{
    GIPPR_CHECK(!components_.empty());
    totalWeight_ = 0.0;
    for (const Component &c : components_) {
        GIPPR_CHECK(c.gen != nullptr);
        GIPPR_CHECK(c.weight > 0.0);
        totalWeight_ += c.weight;
    }
}

MemRecord
MixGenerator::next(Rng &rng)
{
    double pick = rng.nextDouble() * totalWeight_;
    double acc = 0.0;
    for (Component &c : components_) {
        acc += c.weight;
        if (pick < acc)
            return c.gen->next(rng);
    }
    return components_.back().gen->next(rng);
}

Trace
generateTrace(AccessGenerator &gen, uint64_t accesses, Rng &rng)
{
    Trace trace;
    trace.reserve(accesses);
    for (uint64_t i = 0; i < accesses; ++i)
        trace.append(gen.next(rng));
    return trace;
}

} // namespace gippr
