/**
 * @file
 * Synthetic memory-access generators.
 *
 * These stand in for the paper's SPEC CPU 2006 traces (see DESIGN.md,
 * substitution table).  Replacement-policy behaviour is driven by the
 * reuse-distance structure of the access stream; each generator
 * produces one archetypal structure, and the suite combines them into
 * benchmark-like named workloads:
 *
 *  - StreamGenerator:       zero-reuse sequential scans
 *  - LoopGenerator:         cyclic sweeps over a fixed working set
 *                           (thrashes LRU when the set exceeds the
 *                           cache; the LIP/BIP-friendly archetype)
 *  - PointerChaseGenerator: a random permutation cycle (dependent
 *                           chain, near-uniform long reuse distances)
 *  - ZipfGenerator:         skewed popularity (recency-friendly)
 *  - HotColdGenerator:      a resident hot set polluted by cold
 *                           streaming traffic (insertion policy matters)
 *  - StencilGenerator:      row sweeps with neighbour reuse
 *  - SdProfileGenerator:    reproduces an explicit stack-distance
 *                           histogram — the direct knob on reuse
 *  - PhasedGenerator:       time-multiplexes children (adaptivity)
 *  - MixGenerator:          statistically interleaves children
 *
 * All addresses are block-granular (multiplied by the block size);
 * every generator assigns stable, distinct PCs to its logical access
 * streams so PC-based policies (SHiP) have real signatures to learn.
 */

#ifndef GIPPR_WORKLOADS_GENERATORS_HH_
#define GIPPR_WORKLOADS_GENERATORS_HH_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"
#include "trace/trace.hh"
#include "util/rng.hh"

namespace gippr
{

/** Base class: a stateful stream of memory references. */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** Produce the next reference. */
    virtual MemRecord next(Rng &rng) = 0;

    /** Generator family name (diagnostics). */
    virtual std::string name() const = 0;

  protected:
    /** Block size all generators emit addresses in. */
    static constexpr uint64_t kBlockBytes = 64;

    /** Helper: finish a record with common fields. */
    static MemRecord makeRecord(uint64_t block, uint64_t pc,
                                uint32_t gap, bool write);
};

/** Common knobs shared by generators. */
struct GenParams
{
    /** Mean instruction gap between references. */
    uint32_t meanGap = 6;
    /** Fraction of references that are stores. */
    double writeFrac = 0.2;
    /** Base of the region this generator's blocks live in. */
    uint64_t regionBase = 0;
    /** Base PC for this generator's access streams. */
    uint64_t pcBase = 0x400000;
};

/** Sequential scan over a very large region; blocks never recur. */
class StreamGenerator : public AccessGenerator
{
  public:
    /**
     * @param params  common knobs
     * @param stride  block stride between consecutive references
     * @param wrap    region length in blocks before the scan wraps
     *                (choose >> cache so wrap reuse is cold)
     */
    StreamGenerator(const GenParams &params, uint64_t stride,
                    uint64_t wrap);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "stream"; }

  private:
    GenParams params_;
    uint64_t stride_;
    uint64_t wrap_;
    uint64_t cursor_ = 0;
};

/** Cyclic sweep over a fixed working set of blocks. */
class LoopGenerator : public AccessGenerator
{
  public:
    /** @param blocks working-set size in blocks */
    LoopGenerator(const GenParams &params, uint64_t blocks);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "loop"; }

  private:
    GenParams params_;
    uint64_t blocks_;
    uint64_t cursor_ = 0;
};

/** Random permutation cycle: dependent pointer chasing. */
class PointerChaseGenerator : public AccessGenerator
{
  public:
    /**
     * @param blocks  number of nodes in the chain
     * @param seed    permutation seed (stable per workload)
     */
    PointerChaseGenerator(const GenParams &params, uint64_t blocks,
                          uint64_t seed);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "chase"; }

  private:
    GenParams params_;
    std::vector<uint32_t> nextNode_;
    uint64_t current_ = 0;
};

/** Zipf-popularity references over a block population. */
class ZipfGenerator : public AccessGenerator
{
  public:
    /**
     * @param blocks  population size
     * @param theta   Zipf skew (0 = uniform)
     * @param seed    seed of the rank->block shuffling hash
     */
    ZipfGenerator(const GenParams &params, uint64_t blocks, double theta,
                  uint64_t seed);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "zipf"; }

  private:
    GenParams params_;
    ZipfSampler sampler_;
    uint64_t seed_;
};

/** Hot resident set plus cold streaming pollution. */
class HotColdGenerator : public AccessGenerator
{
  public:
    /**
     * @param hot_blocks  size of the reused hot set
     * @param hot_frac    probability a reference targets the hot set
     * @param cold_wrap   cold-stream region length in blocks
     */
    HotColdGenerator(const GenParams &params, uint64_t hot_blocks,
                     double hot_frac, uint64_t cold_wrap);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "hotcold"; }

  private:
    GenParams params_;
    uint64_t hotBlocks_;
    double hotFrac_;
    uint64_t coldWrap_;
    uint64_t coldCursor_ = 0;
};

/** Row-major sweeps with vertical neighbour reuse (stencil codes). */
class StencilGenerator : public AccessGenerator
{
  public:
    /**
     * @param row_blocks  blocks per grid row
     * @param rows        number of rows swept per pass
     */
    StencilGenerator(const GenParams &params, uint64_t row_blocks,
                     uint64_t rows);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "stencil"; }

  private:
    GenParams params_;
    uint64_t rowBlocks_;
    uint64_t rows_;
    uint64_t cursor_ = 0; // linear position in the pass
    unsigned phase_ = 0;  // which neighbour of the point we emit next
};

/**
 * Reuse-distance-profile generator.
 *
 * Keeps a ring of the most recently emitted blocks; each reference
 * either touches a brand-new block (compulsory) or re-touches the
 * block emitted d references ago, with d drawn from a weighted band
 * histogram.  The produced stream therefore has a directly controlled
 * reuse-distance mix — the quantity replacement policies respond to —
 * at O(1) cost per reference (reuse distance upper-bounds stack
 * distance, so bands placed beyond the cache size guarantee capacity
 * misses and bands well inside it guarantee hits).
 */
class SdProfileGenerator : public AccessGenerator
{
  public:
    /**
     * One histogram band: reuse at distances [lo, hi] (counted in
     * references) with the given relative weight.
     */
    struct Band
    {
        uint64_t lo;
        uint64_t hi;
        double weight;
    };

    /**
     * @param bands       reuse-distance bands
     * @param new_weight  relative weight of compulsory (new) blocks
     */
    SdProfileGenerator(const GenParams &params, std::vector<Band> bands,
                       double new_weight);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "sdprofile"; }

  private:
    GenParams params_;
    std::vector<Band> bands_;
    double newWeight_;
    double totalWeight_;
    std::vector<uint64_t> history_; // ring of recent blocks
    /** Latest emission index per block (pruned periodically). */
    std::unordered_map<uint64_t, uint64_t> lastEmit_;
    uint64_t emitted_ = 0; // total references so far
    uint64_t nextNew_ = 0;
};

/** Deterministic phase multiplexer over child generators. */
class PhasedGenerator : public AccessGenerator
{
  public:
    struct Phase
    {
        std::unique_ptr<AccessGenerator> gen;
        uint64_t length; ///< references before switching
    };

    explicit PhasedGenerator(std::vector<Phase> phases);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "phased"; }

  private:
    std::vector<Phase> phases_;
    size_t current_ = 0;
    uint64_t emitted_ = 0;
};

/**
 * Multi-tenant KV-cache traffic: several user populations share one
 * cache, each issuing GET/SET requests for Zipf-popular keys.
 *
 * Every reference first picks a tenant by arrival weight, then draws a
 * key rank from that tenant's own Zipf sampler and scatters it over
 * the tenant's disjoint block range with a seeded hash — so streams
 * are fully determined by (tenants, seed, rng seed).  Optional key
 * churn re-salts the rank->block map every @p churn_every references,
 * modelling TTL expiry / key-set rotation: old keys go dead and the
 * new epoch's keys arrive cold.
 */
class KvCacheGenerator : public AccessGenerator
{
  public:
    /** One user population. */
    struct Tenant
    {
        /** Key population size, in blocks. */
        uint64_t keys;
        /** Zipf skew of the tenant's key popularity. */
        double theta;
        /** Relative share of arriving requests. */
        double weight;
        /** SET (store) fraction of the tenant's requests. */
        double writeFrac;
    };

    /**
     * @param tenants      populations sharing the cache (>= 1)
     * @param seed         key-scatter hash seed
     * @param churn_every  references between key-set rotations
     *                     (0 = keys never churn)
     */
    KvCacheGenerator(const GenParams &params, std::vector<Tenant> tenants,
                     uint64_t seed, uint64_t churn_every = 0);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "kvcache"; }

  private:
    struct TenantState
    {
        ZipfSampler sampler;
        uint64_t base;     ///< first block of the tenant's range
        double writeFrac;
    };

    GenParams params_;
    std::vector<TenantState> tenants_;
    std::vector<double> cumWeight_; ///< running arrival-weight sums
    uint64_t seed_;
    uint64_t churnEvery_;
    uint64_t emitted_ = 0;
};

/** Statistical interleaving of child generators. */
class MixGenerator : public AccessGenerator
{
  public:
    struct Component
    {
        std::unique_ptr<AccessGenerator> gen;
        double weight;
    };

    explicit MixGenerator(std::vector<Component> components);

    MemRecord next(Rng &rng) override;
    std::string name() const override { return "mix"; }

  private:
    std::vector<Component> components_;
    double totalWeight_;
};

/** Drive @p gen for @p accesses references into a Trace. */
Trace generateTrace(AccessGenerator &gen, uint64_t accesses, Rng &rng);

} // namespace gippr

#endif // GIPPR_WORKLOADS_GENERATORS_HH_
