/**
 * @file
 * The synthetic benchmark suite standing in for SPEC CPU 2006.
 *
 * Thirty named workloads, each one or more weighted "simpoints"
 * (mirroring the paper's SimPoint methodology), spanning the reuse
 * archetypes that differentiate replacement policies: zero-reuse
 * streams, LRU-thrashing loops, pointer chases, skewed popularity,
 * scan-polluted hot sets, stencils, explicit reuse-distance profiles
 * and phase-changing behaviours.  Sizes are expressed relative to the
 * LLC capacity so the suite scales with the cache under study.
 *
 * Workloads are described by *specs* and materialized on demand, so a
 * harness can process one workload at a time without holding every
 * trace in memory.
 */

#ifndef GIPPR_WORKLOADS_SUITE_HH_
#define GIPPR_WORKLOADS_SUITE_HH_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/simpoint.hh"
#include "workloads/generators.hh"

namespace gippr
{

/** Suite-wide scaling knobs. */
struct SuiteParams
{
    /** Capacity, in blocks, of the LLC the suite should stress. */
    uint64_t llcBlocks = 16384; // 1MB at 64B lines
    /** CPU-level references generated per simpoint. */
    uint64_t accessesPerSimpoint = 1'000'000;
    /** Base seed; every simpoint derives a distinct stream from it. */
    uint64_t baseSeed = 0x5eed;
};

/** Recipe for one simpoint: how to build its generator. */
struct SimpointSpec
{
    std::function<std::unique_ptr<AccessGenerator>()> make;
    uint64_t accesses = 0;
    double weight = 1.0;
    uint64_t seed = 1;
};

/** Recipe for one named workload. */
struct WorkloadSpec
{
    std::string name;
    std::vector<SimpointSpec> simpoints;
    /**
     * LLC capacity (blocks) the generators were scaled to.  Working
     * sets are sized relative to this, so together with the simpoint
     * seeds it pins down the generated streams — consumers that
     * memoize traces key on it.
     */
    uint64_t capacityBlocks = 0;
};

/** The full suite. */
class SyntheticSuite
{
  public:
    explicit SyntheticSuite(SuiteParams params = {});

    const std::vector<WorkloadSpec> &specs() const { return specs_; }
    const SuiteParams &params() const { return params_; }

    /** Find a spec by name; throws if absent. */
    const WorkloadSpec &spec(const std::string &name) const;

    /** Build the traces for one workload. */
    static Workload materialize(const WorkloadSpec &spec);

    /** Names of every workload, in suite order. */
    std::vector<std::string> names() const;

  private:
    SuiteParams params_;
    std::vector<WorkloadSpec> specs_;
};

/**
 * The Zipf KV-cache multi-tenant serving family: four workloads whose
 * streams model user populations sharing one cache (skewed tenant
 * mixes, a dominant hot tenant, TTL-style key churn, and a scan
 * victim).  Deliberately kept OUT of the 30-workload suite so the
 * suite's golden digests and sweep results stay stable; the
 * multi-core mixes resolve names against the suite first and then
 * against this family.
 */
std::vector<WorkloadSpec> kvCacheFamily(SuiteParams params = {});

/**
 * The phase-shift family: four workloads whose streams switch regime
 * mid-trace (scan -> Zipf -> thrashing loop -> stream, and friends),
 * each phase living in its own address region so both the miss-rate
 * and the working-set drift triggers see real change-points.  Built
 * for the online policy selector's drift-scenario harness and, like
 * the KV family, kept OUT of the 30-workload suite so its golden
 * digests stay stable; workload-name resolution tries the suite, then
 * the KV family, then this family.
 */
std::vector<WorkloadSpec> phaseShiftFamily(SuiteParams params = {});

} // namespace gippr

#endif // GIPPR_WORKLOADS_SUITE_HH_
