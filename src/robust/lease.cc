/**
 * @file
 * Lease encode/decode, heartbeat writer, and staleness monitor.
 */

#include "robust/lease.hh"

#include <chrono>
#include <cstdio>

#include "robust/atomic_io.hh"

namespace gippr::robust
{

namespace
{

/** The prefix every lease line starts with (format version pinned). */
constexpr const char *kLeaseTag = "gippr-lease v1";

} // namespace

std::string
encodeLease(const LeaseInfo &info)
{
    char prefix[160];
    const int n = std::snprintf(
        prefix, sizeof(prefix),
        "%s island=%u pid=%lld incarnation=%llu seq=%llu", kLeaseTag,
        static_cast<unsigned>(info.island),
        static_cast<long long>(info.pid),
        static_cast<unsigned long long>(info.incarnation),
        static_cast<unsigned long long>(info.seq));
    const uint32_t crc = crc32(prefix, static_cast<size_t>(n));
    char line[192];
    std::snprintf(line, sizeof(line), "%s crc=%08x\n", prefix, crc);
    return line;
}

bool
decodeLease(std::string_view text, LeaseInfo &out)
{
    // Strip a single trailing newline; anything else trailing is a
    // malformation.
    if (!text.empty() && text.back() == '\n')
        text.remove_suffix(1);
    const size_t crc_at = text.rfind(" crc=");
    if (crc_at == std::string_view::npos)
        return false;
    const std::string prefix(text.substr(0, crc_at));
    const std::string crc_text(text.substr(crc_at + 5));
    if (crc_text.size() != 8)
        return false;
    unsigned long stored = 0;
    if (std::sscanf(crc_text.c_str(), "%8lx", &stored) != 1)
        return false;
    if (crc32(prefix.data(), prefix.size()) !=
        static_cast<uint32_t>(stored))
        return false;

    LeaseInfo parsed;
    unsigned island = 0;
    long long pid = 0;
    unsigned long long incarnation = 0;
    unsigned long long seq = 0;
    const std::string pattern =
        std::string(kLeaseTag) +
        " island=%u pid=%lld incarnation=%llu seq=%llu";
    if (std::sscanf(prefix.c_str(), pattern.c_str(), &island, &pid,
                    &incarnation, &seq) != 4)
        return false;
    parsed.island = island;
    parsed.pid = pid;
    parsed.incarnation = incarnation;
    parsed.seq = seq;
    out = parsed;
    return true;
}

LeaseWriter::LeaseWriter(std::string path, uint32_t island,
                         int64_t pid, uint64_t incarnation)
    : path_(std::move(path))
{
    info_.island = island;
    info_.pid = pid;
    info_.incarnation = incarnation;
    info_.seq = 0;
}

void
LeaseWriter::beat()
{
    ++info_.seq;
    writeFileAtomic(path_, encodeLease(info_));
}

void
LeaseMonitor::observe(uint32_t island, bool hasLease, uint64_t seq,
                      uint64_t incarnation, uint64_t nowMs)
{
    auto [it, inserted] = tracks_.try_emplace(island);
    Track &track = it->second;
    if (inserted)
        track.lastChangeMs = nowMs;
    if (!hasLease)
        return; // silence: the clock keeps running toward stale
    if (!track.everHadLease || seq != track.lastSeq ||
        incarnation != track.lastIncarnation) {
        track.everHadLease = true;
        track.lastSeq = seq;
        track.lastIncarnation = incarnation;
        track.lastChangeMs = nowMs;
    }
}

bool
LeaseMonitor::stale(uint32_t island, uint64_t nowMs) const
{
    const auto it = tracks_.find(island);
    if (it == tracks_.end())
        return false;
    // A worker that never heartbeat is not stale — it may still be
    // initializing; outright process death is the spawner's (waitpid)
    // problem, not the lease monitor's.
    return it->second.everHadLease &&
           nowMs - it->second.lastChangeMs >= staleAfterMs_;
}

void
LeaseMonitor::forget(uint32_t island)
{
    tracks_.erase(island);
}

uint64_t
steadyNowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace gippr::robust
