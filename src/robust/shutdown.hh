/**
 * @file
 * Graceful-shutdown signalling for long-running drivers.
 *
 * A GA run is minutes-to-hours of work; SIGINT/SIGTERM must not
 * vaporize it.  ShutdownGuard installs signal handlers that do the
 * only async-signal-safe thing — set a flag — and the drivers poll
 * requested() at their generation boundaries: on the first signal
 * they write a checkpoint, flush a partial RunReport marked
 * "interrupted": true, and exit cleanly; a second signal aborts
 * immediately with the conventional 128+signo status (the escape
 * hatch when the current generation itself hangs).
 */

#ifndef GIPPR_ROBUST_SHUTDOWN_HH_
#define GIPPR_ROBUST_SHUTDOWN_HH_

namespace gippr::robust
{

/** RAII installer for the SIGINT/SIGTERM graceful-shutdown flag. */
class ShutdownGuard
{
  public:
    /** Install handlers (at most one live guard per process). */
    ShutdownGuard();
    /** Restore the previous handlers. */
    ~ShutdownGuard();

    ShutdownGuard(const ShutdownGuard &) = delete;
    ShutdownGuard &operator=(const ShutdownGuard &) = delete;

    /** True once a shutdown signal (or requestShutdown) arrived. */
    static bool requested();

    /** Arm the flag as if a signal arrived (tests, embedders). */
    static void requestShutdown();

    /** Clear the flag (tests only). */
    static void clear();

  private:
    bool installed_ = false;
};

} // namespace gippr::robust

#endif // GIPPR_ROBUST_SHUTDOWN_HH_
