/**
 * @file
 * Deterministic I/O fault injection for crash-safety tests.
 *
 * Production systems must survive failed opens, short writes, ENOSPC
 * and failed renames; proving that requires making those failures
 * happen on demand.  Every durable-I/O primitive in src/robust (and
 * the trace reader/writer built on it) consults the process-wide
 * FaultInjector before touching the real syscall, so a test — or the
 * CI fault-injection sweep — can fail exactly the Nth open/write/
 * rename/fsync/close and assert that the caller either retries or
 * degrades to a clean error with no torn files left behind.
 *
 * Configuration comes from the GIPPR_FAULT_INJECT environment
 * variable (read once, at first use) or programmatically via
 * configure().  The spec is a comma-separated list of <fault>=<N>
 * terms, each arming one fault at the Nth occurrence (1-based) of its
 * operation class:
 *
 *   open=N         Nth open() fails (EIO)
 *   write=N        Nth write() fails (EIO)
 *   short_write=N  Nth write() persists only half the buffer, then
 *                  fails (a torn write unless the caller is atomic)
 *   enospc=N       Nth write() fails with ENOSPC
 *   rename=N       Nth rename() fails
 *   fsync=N        Nth fsync() fails
 *   close=N        Nth close() fails (buffered-data flush failure)
 *   read=N         Nth read()/fread() fails (EIO)
 *   mmap=N         Nth mmap() fails (caller must fall back or err)
 *
 * Counters are global and thread-safe; each armed fault fires once.
 */

#ifndef GIPPR_ROBUST_FAULT_INJECT_HH_
#define GIPPR_ROBUST_FAULT_INJECT_HH_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gippr::robust
{

/** Operation classes the injector can interpose on. */
enum class FaultOp : unsigned
{
    Open = 0,
    Write,
    Rename,
    Fsync,
    Close,
    Read,
    Mmap,
};

/** Number of FaultOp classes (array sizing). */
constexpr unsigned kFaultOpCount = 7;

/** What an armed fault does when it fires. */
enum class FaultKind : uint8_t
{
    None = 0,   ///< no fault: perform the real operation
    Fail,       ///< fail outright (EIO)
    ShortWrite, ///< persist half the buffer, then fail (Write only)
    Enospc,     ///< fail with ENOSPC (Write only)
};

/** Process-wide injection point registry. */
class FaultInjector
{
  public:
    /**
     * The singleton, configured from GIPPR_FAULT_INJECT on first
     * access (empty/unset env means "no faults").
     */
    static FaultInjector &instance();

    /**
     * Replace the armed fault set from @p spec (see file comment for
     * the grammar) and zero all counters.  An empty spec disarms
     * everything.  Throws std::runtime_error on a malformed spec.
     */
    void configure(const std::string &spec);

    /** Disarm all faults and zero the counters. */
    void reset();

    /**
     * Account one occurrence of @p op and return the fault to inject
     * for it (FaultKind::None almost always).  Each armed fault fires
     * exactly once.
     */
    FaultKind check(FaultOp op);

    /** Occurrences of @p op seen so far (diagnostics). */
    uint64_t count(FaultOp op) const;

    /** True when any fault is armed (cheap fast-path guard). */
    bool armed() const { return armed_; }

  private:
    FaultInjector();

    struct Rule
    {
        FaultOp op;
        FaultKind kind;
        uint64_t nth;   ///< 1-based occurrence that trips the fault
        bool fired = false;
    };

    mutable std::mutex mu_;
    std::vector<Rule> rules_;
    std::array<uint64_t, kFaultOpCount> counts_{};
    std::atomic<bool> armed_{false};
};

} // namespace gippr::robust

#endif // GIPPR_ROBUST_FAULT_INJECT_HH_
