/**
 * @file
 * Checkpoint envelope implementation.
 */

#include "robust/checkpoint.hh"

#include <cstring>

#include <sys/stat.h>

#include "robust/atomic_io.hh"
#include "robust/shutdown.hh"
#include "util/log.hh"

namespace gippr::robust
{

namespace
{

constexpr char kMagic[4] = {'G', 'P', 'C', 'K'};
constexpr uint32_t kEnvelopeVersion = 1;

} // namespace

bool
CheckpointOptions::stopRequested() const
{
    if (stopHook)
        return stopHook();
    return watchShutdown && ShutdownGuard::requested();
}

void
ByteWriter::u8(uint8_t v)
{
    buf_.push_back(static_cast<char>(v));
}

void
ByteWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void
ByteWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void
ByteWriter::f64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(std::string_view s)
{
    u32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
}

void
ByteWriter::bytes(const std::vector<uint8_t> &v)
{
    u32(static_cast<uint32_t>(v.size()));
    buf_.append(reinterpret_cast<const char *>(v.data()), v.size());
}

ByteReader::ByteReader(std::string_view buf, std::string context)
    : buf_(buf), context_(std::move(context))
{
}

void
ByteReader::need(size_t n) const
{
    if (buf_.size() - pos_ < n)
        fatal("checkpoint payload truncated: " + context_);
}

uint8_t
ByteReader::u8()
{
    need(1);
    return static_cast<uint8_t>(buf_[pos_++]);
}

uint32_t
ByteReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(
                 static_cast<unsigned char>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
ByteReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(
                 static_cast<unsigned char>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

double
ByteReader::f64()
{
    const uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    const uint32_t n = u32();
    need(n);
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
}

std::vector<uint8_t>
ByteReader::bytes()
{
    const uint32_t n = u32();
    need(n);
    std::vector<uint8_t> v(n);
    std::memcpy(v.data(), buf_.data() + pos_, n);
    pos_ += n;
    return v;
}

std::string
ByteReader::raw(size_t n)
{
    need(n);
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
}

void
ByteReader::expectEnd() const
{
    if (!atEnd())
        fatal("checkpoint payload has trailing bytes: " + context_);
}

bool
checkpointExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

void
writeCheckpointFile(const std::string &path, const std::string &kind,
                    uint32_t version, std::string_view payload)
{
    ByteWriter env;
    env.u32(kEnvelopeVersion);
    env.u32(version);
    env.str(kind);
    env.u64(payload.size());
    env.u32(crc32(payload.data(), payload.size()));
    std::string file(kMagic, sizeof(kMagic));
    file += env.data();
    file.append(payload.data(), payload.size());
    writeFileAtomic(path, file);
}

std::string
readCheckpointFile(const std::string &path, const std::string &kind,
                   uint32_t version)
{
    const std::string file = readFileBytes(path);
    if (file.size() < sizeof(kMagic) ||
        std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
        fatal("not a GPCK checkpoint file: " + path);
    }
    ByteReader env(
        std::string_view(file).substr(sizeof(kMagic)), path);
    const uint32_t envelope_version = env.u32();
    if (envelope_version != kEnvelopeVersion)
        fatal("unsupported checkpoint envelope version " +
              std::to_string(envelope_version) + ": " + path);
    const uint32_t payload_version = env.u32();
    const std::string file_kind = env.str();
    if (file_kind != kind)
        fatal("checkpoint kind mismatch: " + path + " holds a \"" +
              file_kind + "\" checkpoint, expected \"" + kind + "\"");
    if (payload_version != version)
        fatal("unsupported " + kind + " checkpoint version " +
              std::to_string(payload_version) + " (this build reads " +
              std::to_string(version) + "): " + path);
    const uint64_t payload_size = env.u64();
    const uint32_t expect_crc = env.u32();
    const std::string payload = env.raw(payload_size);
    env.expectEnd();
    if (crc32(payload.data(), payload.size()) != expect_crc)
        fatal("checkpoint checksum mismatch (corrupt file): " + path);
    return payload;
}

} // namespace gippr::robust
