/**
 * @file
 * Versioned, checksummed checkpoint files.
 *
 * A checkpoint is a binary envelope around an opaque payload:
 *
 *   magic   "GPCK"                       4 bytes
 *   u32     envelope version (1)
 *   u32     payload format version       producer-defined
 *   u32     kind length, then kind bytes ("ga-evolve", ...)
 *   u64     payload length
 *   u32     CRC-32 of the payload
 *   payload
 *
 * Envelopes are written atomically (robust/atomic_io.hh), so a crash
 * mid-checkpoint leaves the previous checkpoint intact; loads verify
 * magic, versions, kind and checksum and reject anything off with a
 * clear std::runtime_error — a corrupt checkpoint must never crash a
 * resume or silently restart the run from scratch.
 *
 * ByteWriter/ByteReader are the fixed-width little-endian payload
 * (de)serializers the GA checkpoints build on; doubles travel as
 * IEEE-754 bit patterns so restored fitness values are bit-identical.
 */

#ifndef GIPPR_ROBUST_CHECKPOINT_HH_
#define GIPPR_ROBUST_CHECKPOINT_HH_

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gippr::robust
{

/**
 * Thrown when a driver stops at a clean boundary because shutdown
 * was requested; the checkpoint is already on disk when this leaves
 * the driver.
 */
class Interrupted : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Crash-safety knobs shared by all search drivers. */
struct CheckpointOptions
{
    /** Checkpoint file; empty disables checkpointing entirely. */
    std::string path;
    /** Generations (or chunks) between periodic checkpoints. */
    unsigned every = 1;
    /** Load @p path and continue from it when it exists. */
    bool resume = false;
    /** Honour ShutdownGuard::requested() at boundaries. */
    bool watchShutdown = true;
    /**
     * Test hook: when set, polled instead of ShutdownGuard (lets
     * tests interrupt deterministically at the Nth boundary).
     */
    std::function<bool()> stopHook;

    /** True when checkpointing is on. */
    bool enabled() const { return !path.empty(); }
    /** Should the driver stop at this boundary? */
    bool stopRequested() const;
};

/** Little-endian payload builder. */
class ByteWriter
{
  public:
    void u8(uint8_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    /** IEEE-754 bit pattern, exact round trip. */
    void f64(double v);
    /** u32 length + raw bytes. */
    void str(std::string_view s);
    void bytes(const std::vector<uint8_t> &v);

    const std::string &data() const { return buf_; }

  private:
    std::string buf_;
};

/** Bounds-checked little-endian payload reader. */
class ByteReader
{
  public:
    /** @param context  file path, for error messages */
    ByteReader(std::string_view buf, std::string context);

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    double f64();
    std::string str();
    std::vector<uint8_t> bytes();
    /** @p n raw bytes (no length prefix). */
    std::string raw(size_t n);

    bool atEnd() const { return pos_ == buf_.size(); }
    /** fatal() unless the whole payload was consumed. */
    void expectEnd() const;

  private:
    void need(size_t n) const;

    std::string_view buf_;
    size_t pos_ = 0;
    std::string context_;
};

/** True when @p path exists (resume probe). */
bool checkpointExists(const std::string &path);

/**
 * Atomically write @p payload to @p path under the checkpoint
 * envelope.  fatal() on I/O failure (no torn file remains).
 */
void writeCheckpointFile(const std::string &path,
                         const std::string &kind, uint32_t version,
                         std::string_view payload);

/**
 * Read and validate the envelope at @p path; returns the payload.
 * fatal() with a specific message on: unreadable file, bad magic,
 * unsupported envelope or payload version, kind mismatch, truncated
 * payload, or checksum mismatch.
 */
std::string readCheckpointFile(const std::string &path,
                               const std::string &kind,
                               uint32_t version);

} // namespace gippr::robust

#endif // GIPPR_ROBUST_CHECKPOINT_HH_
