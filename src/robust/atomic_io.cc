/**
 * @file
 * Atomic durable I/O implementation.
 */

#include "robust/atomic_io.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "robust/fault_inject.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace gippr::robust
{

namespace
{

/** Lazily built CRC-32 lookup table (IEEE 802.3, reflected). */
const uint32_t *
crcTable()
{
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table.data();
}

/** errno as text, for error messages. */
std::string
errnoText()
{
    return std::strerror(errno);
}

/** open(2) with fault injection. */
int
fiOpen(const std::string &path, int flags, mode_t mode)
{
    if (FaultInjector::instance().check(FaultOp::Open) !=
        FaultKind::None) {
        errno = EIO;
        return -1;
    }
    return ::open(path.c_str(), flags, mode);
}

/**
 * Write all of @p n bytes to @p fd, honouring injected write faults
 * (outright failure, ENOSPC, torn half-write).  Returns false with
 * errno set on failure.
 */
bool
fiWriteAll(int fd, const char *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        size_t chunk = n - off;
        const FaultKind fault =
            FaultInjector::instance().check(FaultOp::Write);
        if (fault == FaultKind::Fail) {
            errno = EIO;
            return false;
        }
        if (fault == FaultKind::Enospc) {
            errno = ENOSPC;
            return false;
        }
        if (fault == FaultKind::ShortWrite) {
            // Persist half the remaining payload, then report
            // failure: the torn-write scenario atomic replacement
            // must mask.
            chunk = chunk / 2;
            if (chunk > 0)
                (void)::write(fd, data + off, chunk);
            errno = EIO;
            return false;
        }
        const ssize_t wrote = ::write(fd, data + off, chunk);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(wrote);
    }
    return true;
}

bool
fiFsync(int fd)
{
    if (FaultInjector::instance().check(FaultOp::Fsync) !=
        FaultKind::None) {
        errno = EIO;
        return false;
    }
    return ::fsync(fd) == 0;
}

bool
fiClose(int fd)
{
    if (FaultInjector::instance().check(FaultOp::Close) !=
        FaultKind::None) {
        (void)::close(fd);
        errno = EIO;
        return false;
    }
    return ::close(fd) == 0;
}

bool
fiRename(const std::string &from, const std::string &to)
{
    if (FaultInjector::instance().check(FaultOp::Rename) !=
        FaultKind::None) {
        errno = EIO;
        return false;
    }
    return std::rename(from.c_str(), to.c_str()) == 0;
}

/** Directory part of @p path ("." when there is none). */
std::string
dirnameOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/**
 * fsync the directory containing @p path so the rename itself is
 * durable.  Best-effort: some filesystems refuse O_RDONLY directory
 * fsync; that weakens durability, not atomicity, so it only warns.
 */
void
syncParentDir(const std::string &path)
{
    const int fd =
        ::open(dirnameOf(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    if (::fsync(fd) != 0)
        warn("fsync of directory for " + path + " failed: " +
             errnoText());
    (void)::close(fd);
}

} // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t crc)
{
    const uint32_t *table = crcTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint32_t c = crc ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

bool
retryWithBackoff(const RetryPolicy &policy,
                 const std::function<bool()> &op)
{
    Rng jitter(policy.jitterSeed);
    const unsigned attempts = policy.attempts > 0 ? policy.attempts : 1;
    uint64_t scheduled_ms = 0;
    for (unsigned attempt = 1;; ++attempt) {
        if (op())
            return true;
        if (attempt >= attempts)
            return false;
        const double scale = 0.5 + jitter.nextDouble() / 2.0;
        // Clamp the exponent so the shift cannot overflow on long
        // deadline-bounded polls (2^31 ms is already ~25 days).
        const unsigned exponent = std::min(attempt - 1, 31u);
        double raw = static_cast<double>(policy.baseDelayMs) *
                     static_cast<double>(1ull << exponent) * scale;
        if (policy.maxDelayMs > 0)
            raw = std::min(raw, static_cast<double>(policy.maxDelayMs));
        const unsigned delay = static_cast<unsigned>(raw);
        if (policy.deadlineMs > 0 &&
            scheduled_ms + delay > policy.deadlineMs) {
            return false; // backoff budget exhausted
        }
        scheduled_ms += delay;
        if (policy.sleeper)
            policy.sleeper(delay);
        else if (delay > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
    }
}

RetryPolicy
defaultRetryPolicy()
{
    RetryPolicy policy;
    const char *env = std::getenv("GIPPR_IO_RETRY_BASE_MS");
    if (env && *env)
        policy.baseDelayMs =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return policy;
}

void
writeFileAtomic(const std::string &path, std::string_view payload)
{
    // The temp name carries the pid so concurrent writers of
    // *different* runs never collide; the final rename is what
    // publishes.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        fiOpen(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        fatal("cannot open temp file for atomic write of " + path +
              ": " + errnoText());

    auto fail = [&](const std::string &step) {
        const std::string err = errnoText();
        (void)::close(fd);
        (void)::unlink(tmp.c_str());
        fatal(step + " failed during atomic write of " + path + ": " +
              err);
    };
    if (!fiWriteAll(fd, payload.data(), payload.size()))
        fail("write");
    if (!fiFsync(fd))
        fail("fsync");
    if (!fiClose(fd)) {
        const std::string err = errnoText();
        (void)::unlink(tmp.c_str());
        fatal("close failed during atomic write of " + path + ": " +
              err);
    }
    if (!fiRename(tmp, path)) {
        const std::string err = errnoText();
        (void)::unlink(tmp.c_str());
        fatal("rename failed during atomic write of " + path + ": " +
              err);
    }
    syncParentDir(path);
}

namespace
{

/**
 * Shared read loop: fills @p out from @p path, reporting failure via
 * @p error (empty on success).  Open and read both route through the
 * fault injector so the CI read-side sweep can fail either.
 */
bool
readFileBytesImpl(const std::string &path, std::string &out,
                  std::string &error)
{
    const int fd = fiOpen(path, O_RDONLY, 0);
    if (fd < 0) {
        error = "cannot open " + path + " for reading: " + errnoText();
        return false;
    }
    std::string bytes;
    char buf[1 << 16];
    for (;;) {
        if (FaultInjector::instance().check(FaultOp::Read) !=
            FaultKind::None) {
            (void)::close(fd);
            error = "read of " + path + " failed: " +
                    std::strerror(EIO);
            return false;
        }
        const ssize_t got = ::read(fd, buf, sizeof(buf));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            error = "read of " + path + " failed: " + errnoText();
            (void)::close(fd);
            return false;
        }
        if (got == 0)
            break;
        bytes.append(buf, static_cast<size_t>(got));
    }
    (void)::close(fd);
    out = std::move(bytes);
    return true;
}

} // namespace

std::string
readFileBytes(const std::string &path)
{
    std::string out;
    std::string error;
    if (!readFileBytesImpl(path, out, error))
        fatal(error);
    return out;
}

bool
tryReadFileBytes(const std::string &path, std::string &out)
{
    std::string error;
    return readFileBytesImpl(path, out, error);
}

bool
publishFileExclusive(const std::string &path, std::string_view payload)
{
    // Stage like writeFileAtomic, but publish with link(2): link
    // fails with EEXIST when the destination already exists, which is
    // the atomic exactly-one-wins arbitration a reclaim needs (a
    // rename would silently crown every contender in turn).  The temp
    // name must be unique per *call*, not per process: same-process
    // threads (the in-process island harness) race here too, and a
    // shared temp would let one contender unlink another's staging
    // file between its close and link.
    static std::atomic<uint64_t> publish_counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(++publish_counter);
    const int fd = fiOpen(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        fatal("cannot open temp file for exclusive publish of " +
              path + ": " + errnoText());
    auto fail = [&](const std::string &step) {
        const std::string err = errnoText();
        (void)::close(fd);
        (void)::unlink(tmp.c_str());
        fatal(step + " failed during exclusive publish of " + path +
              ": " + err);
    };
    if (!fiWriteAll(fd, payload.data(), payload.size()))
        fail("write");
    if (!fiFsync(fd))
        fail("fsync");
    if (!fiClose(fd)) {
        const std::string err = errnoText();
        (void)::unlink(tmp.c_str());
        fatal("close failed during exclusive publish of " + path +
              ": " + err);
    }
    const bool won = ::link(tmp.c_str(), path.c_str()) == 0;
    if (!won && errno != EEXIST) {
        const std::string err = errnoText();
        (void)::unlink(tmp.c_str());
        fatal("link failed during exclusive publish of " + path +
              ": " + err);
    }
    (void)::unlink(tmp.c_str());
    if (won)
        syncParentDir(path);
    return won;
}

} // namespace gippr::robust
