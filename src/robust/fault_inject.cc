/**
 * @file
 * Fault-injector implementation.
 */

#include "robust/fault_inject.hh"

#include <cstdlib>

#include "util/log.hh"

namespace gippr::robust
{

namespace
{

/** Map a spec token to its operation class and fault kind. */
bool
parseFaultName(const std::string &name, FaultOp &op, FaultKind &kind)
{
    if (name == "open") {
        op = FaultOp::Open;
        kind = FaultKind::Fail;
    } else if (name == "write") {
        op = FaultOp::Write;
        kind = FaultKind::Fail;
    } else if (name == "short_write") {
        op = FaultOp::Write;
        kind = FaultKind::ShortWrite;
    } else if (name == "enospc") {
        op = FaultOp::Write;
        kind = FaultKind::Enospc;
    } else if (name == "rename") {
        op = FaultOp::Rename;
        kind = FaultKind::Fail;
    } else if (name == "fsync") {
        op = FaultOp::Fsync;
        kind = FaultKind::Fail;
    } else if (name == "close") {
        op = FaultOp::Close;
        kind = FaultKind::Fail;
    } else if (name == "read") {
        op = FaultOp::Read;
        kind = FaultKind::Fail;
    } else if (name == "mmap") {
        op = FaultOp::Mmap;
        kind = FaultKind::Fail;
    } else {
        return false;
    }
    return true;
}

} // namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::FaultInjector()
{
    const char *env = std::getenv("GIPPR_FAULT_INJECT");
    if (env && *env)
        configure(env);
}

void
FaultInjector::configure(const std::string &spec)
{
    std::vector<Rule> rules;
    std::string token;
    auto flush = [&]() {
        if (token.empty())
            return;
        const size_t eq = token.find('=');
        FaultOp op{};
        FaultKind kind{};
        if (eq == std::string::npos ||
            !parseFaultName(token.substr(0, eq), op, kind)) {
            fatal("GIPPR_FAULT_INJECT: malformed term \"" + token +
                  "\" (want <open|write|short_write|enospc|rename|"
                  "fsync|close|read|mmap>=<N>)");
        }
        const std::string count_text = token.substr(eq + 1);
        char *end = nullptr;
        const unsigned long long nth =
            std::strtoull(count_text.c_str(), &end, 10);
        if (count_text.empty() || *end != '\0' || nth == 0) {
            fatal("GIPPR_FAULT_INJECT: bad occurrence count in \"" +
                  token + "\" (want a positive integer)");
        }
        rules.push_back({op, kind, nth, false});
        token.clear();
    };
    for (char c : spec) {
        if (c == ',')
            flush();
        else if (c != ' ')
            token.push_back(c);
    }
    flush();

    std::lock_guard<std::mutex> lock(mu_);
    rules_ = std::move(rules);
    counts_.fill(0);
    armed_ = !rules_.empty();
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    rules_.clear();
    counts_.fill(0);
    armed_ = false;
}

FaultKind
FaultInjector::check(FaultOp op)
{
    if (!armed_)
        return FaultKind::None;
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t seen = ++counts_[static_cast<unsigned>(op)];
    for (Rule &rule : rules_) {
        if (rule.op == op && !rule.fired && rule.nth == seen) {
            rule.fired = true;
            return rule.kind;
        }
    }
    return FaultKind::None;
}

uint64_t
FaultInjector::count(FaultOp op) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counts_[static_cast<unsigned>(op)];
}

} // namespace gippr::robust
