/**
 * @file
 * Worker leases and clock-skew-robust staleness detection.
 *
 * Every island worker in the multi-process GA service periodically
 * rewrites a small lease file through writeFileAtomic().  The lease
 * carries a monotonically increasing sequence counter — NOT a
 * timestamp: the coordinator may run on a machine (or container)
 * whose clock disagrees arbitrarily with the worker's, so embedded
 * wall-clock times are useless for liveness.  Instead, LeaseMonitor
 * decides staleness purely on its *own* steady clock: a worker is
 * presumed dead once its sequence counter has not advanced for
 * staleAfterMs of the observer's time.  Clock skew between processes
 * therefore cannot cause false positives or negatives; only genuine
 * heartbeat silence can.
 *
 * The lease body is a single CRC-guarded text line so a torn or
 * half-written file (impossible via writeFileAtomic, but a hostile
 * filesystem is exactly what src/robust plans for) is rejected and
 * treated as "no observation", never misparsed.
 */

#ifndef GIPPR_ROBUST_LEASE_HH_
#define GIPPR_ROBUST_LEASE_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace gippr::robust
{

/** Decoded contents of a lease file. */
struct LeaseInfo
{
    /** Island the worker owns. */
    uint32_t island = 0;
    /** Worker process id (diagnostics and CI kill targeting only). */
    int64_t pid = 0;
    /**
     * Respawn generation of this worker: 0 for the original spawn,
     * incremented by the coordinator at each reclaim.  Lets a monitor
     * distinguish "the old worker resumed beating" from "a
     * replacement took over".
     */
    uint64_t incarnation = 0;
    /** Heartbeat counter; advances by 1 per beat. */
    uint64_t seq = 0;
};

/** Serialize @p info as the canonical CRC-guarded lease line. */
std::string encodeLease(const LeaseInfo &info);

/**
 * Parse a lease file body.  Returns false (leaving @p out untouched)
 * on any malformation or CRC mismatch — callers treat that exactly
 * like a missing file.
 */
bool decodeLease(std::string_view text, LeaseInfo &out);

/**
 * One worker's side of the protocol: beat() bumps the sequence
 * counter and atomically rewrites the lease file.
 */
class LeaseWriter
{
  public:
    /**
     * @p path is the lease file location, @p island / @p pid /
     * @p incarnation identify the worker (see LeaseInfo).  Nothing is
     * written until the first beat().
     */
    LeaseWriter(std::string path, uint32_t island, int64_t pid,
                uint64_t incarnation);

    /** Advance the sequence counter and durably rewrite the lease. */
    void beat();

    /** The lease as last written (seq 0 before the first beat). */
    const LeaseInfo &info() const { return info_; }

  private:
    std::string path_;
    LeaseInfo info_;
};

/**
 * The observer's side: fed one observation per island per poll, it
 * tracks when each island's sequence counter last *changed* on the
 * observer's clock and flags islands whose counter has been frozen
 * (or whose lease has been absent) past the staleness threshold.
 *
 * All times are caller-supplied milliseconds from any monotonic
 * source — production passes steadyNowMs(), tests pass a fake clock.
 */
class LeaseMonitor
{
  public:
    /** @p staleAfterMs of observed silence flags a worker as dead. */
    explicit LeaseMonitor(uint64_t staleAfterMs)
        : staleAfterMs_(staleAfterMs)
    {
    }

    /**
     * Record one poll of @p island at observer time @p nowMs.
     * @p hasLease is false when the lease file was missing or
     * unparsable; @p seq and @p incarnation are ignored in that case.
     * A first-ever observation starts the island's silence clock at
     * @p nowMs; a changed (seq, incarnation) pair restarts it.
     */
    void observe(uint32_t island, bool hasLease, uint64_t seq,
                 uint64_t incarnation, uint64_t nowMs);

    /**
     * True when @p island has been observed at least once and its
     * counter has not advanced for >= staleAfterMs of observer time.
     */
    bool stale(uint32_t island, uint64_t nowMs) const;

    /** Forget @p island (after reclaiming it, so the replacement's
        lease starts a fresh silence clock). */
    void forget(uint32_t island);

  private:
    struct Track
    {
        uint64_t lastSeq = 0;
        uint64_t lastIncarnation = 0;
        uint64_t lastChangeMs = 0;
        bool everHadLease = false;
    };

    uint64_t staleAfterMs_;
    std::unordered_map<uint32_t, Track> tracks_;
};

/** Milliseconds from the process-local monotonic clock. */
uint64_t steadyNowMs();

} // namespace gippr::robust

#endif // GIPPR_ROBUST_LEASE_HH_
