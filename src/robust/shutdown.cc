/**
 * @file
 * Shutdown-guard implementation.
 */

#include "robust/shutdown.hh"

#include <csignal>

#include <unistd.h>

#include "util/check.hh"

namespace gippr::robust
{

namespace
{

volatile std::sig_atomic_t g_requested = 0;
bool g_installed = false;
struct sigaction g_prev_int;
struct sigaction g_prev_term;

extern "C" void
shutdownHandler(int signo)
{
    if (g_requested) {
        // Second signal: the operator means it.  Bypass atexit and
        // buffered stdio — both unsafe here — and exit with the
        // conventional killed-by-signal status.
        _exit(128 + signo);
    }
    g_requested = 1;
    // write(2) is async-signal-safe; stdio is not.
    const char msg[] =
        "\nshutdown requested; finishing the current generation and "
        "checkpointing (signal again to abort)\n";
    (void)!::write(2, msg, sizeof(msg) - 1);
}

} // namespace

ShutdownGuard::ShutdownGuard()
{
    GIPPR_CHECK(!g_installed);
    struct sigaction sa{};
    sa.sa_handler = shutdownHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // interrupt blocking syscalls, don't SA_RESTART
    sigaction(SIGINT, &sa, &g_prev_int);
    sigaction(SIGTERM, &sa, &g_prev_term);
    g_installed = true;
    installed_ = true;
}

ShutdownGuard::~ShutdownGuard()
{
    if (!installed_)
        return;
    sigaction(SIGINT, &g_prev_int, nullptr);
    sigaction(SIGTERM, &g_prev_term, nullptr);
    g_installed = false;
}

bool
ShutdownGuard::requested()
{
    return g_requested != 0;
}

void
ShutdownGuard::requestShutdown()
{
    g_requested = 1;
}

void
ShutdownGuard::clear()
{
    g_requested = 0;
}

} // namespace gippr::robust
