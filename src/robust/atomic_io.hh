/**
 * @file
 * Atomic durable file I/O and bounded retry.
 *
 * Every JSON artifact, trace cache file and checkpoint in the repo
 * used to be written in place, so a crash (or ENOSPC) mid-write left
 * a torn file behind.  writeFileAtomic() is the one write path that
 * replaces them all: serialize to a temp file in the target
 * directory, fsync it, rename() over the destination, then fsync the
 * directory — so readers observe either the complete old contents or
 * the complete new contents, never a prefix.  All syscalls route
 * through the FaultInjector (robust/fault_inject.hh) so tests can
 * prove the failure paths clean up after themselves.
 *
 * retryWithBackoff() is the companion policy for *transient* failures
 * (EINTR/EMFILE-style open storms): bounded attempts with
 * exponential, deterministically jittered backoff — the jitter comes
 * from a seeded Rng so tests replay the exact delay sequence.
 */

#ifndef GIPPR_ROBUST_ATOMIC_IO_HH_
#define GIPPR_ROBUST_ATOMIC_IO_HH_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/hot.hh"

namespace gippr::robust
{

/**
 * CRC-32 (IEEE 802.3 polynomial, as in zlib) of @p len bytes at
 * @p data, continuing from @p crc (pass 0 to start a new checksum).
 */
GIPPR_HOT uint32_t crc32(const void *data, size_t len,
                         uint32_t crc = 0);

/** Retry knobs for transient-failure paths. */
struct RetryPolicy
{
    /** Total attempts, including the first (>= 1). */
    unsigned attempts = 3;
    /**
     * Backoff before retry k (1-based) is
     * baseDelayMs * 2^(k-1) * u, u drawn uniformly from [0.5, 1.0)
     * by a Rng seeded with jitterSeed — deterministic per policy.
     */
    unsigned baseDelayMs = 10;
    /**
     * Cap on any single backoff delay (ms); 0 leaves the exponential
     * schedule uncapped.  Long waits (a peer process republishing a
     * file) want steady polling, not minute-long doubled sleeps.
     */
    unsigned maxDelayMs = 0;
    /**
     * Total backoff budget (ms); 0 means unlimited.  Retrying stops —
     * returning false — once the next scheduled delay would push the
     * cumulative backoff past this deadline.  The budget counts the
     * deterministic scheduled delays, not wall-clock time spent in
     * @p op, so the retry schedule stays replayable in tests.
     */
    unsigned deadlineMs = 0;
    uint64_t jitterSeed = 0x9e3779b97f4a7c15ULL;
    /**
     * Sleep hook (milliseconds); null means really sleep.  Tests
     * inject a collector to assert the jittered schedule without
     * waiting it out.
     */
    std::function<void(unsigned)> sleeper;
};

/**
 * Run @p op until it returns true, @p policy.attempts are exhausted,
 * or the deadline budget runs out, backing off between attempts.
 * Returns whether @p op eventually succeeded.
 */
bool retryWithBackoff(const RetryPolicy &policy,
                      const std::function<bool()> &op);

/**
 * The repo-wide default retry policy: 3 attempts with a base delay
 * from GIPPR_IO_RETRY_BASE_MS (default 10 ms; the env knob paces CI
 * fault-injection sweeps).  The env is re-read per call so tests can
 * vary it.
 */
RetryPolicy defaultRetryPolicy();

/**
 * Durably replace the contents of @p path with @p payload via the
 * temp + fsync + rename + dir-fsync sequence.  On any failure the
 * temp file is unlinked and fatal() reports the failing step — the
 * destination is never left torn: it either keeps its old contents
 * or receives the new ones whole.
 */
void writeFileAtomic(const std::string &path, std::string_view payload);

/**
 * Read all of @p path into a string (fault-injector aware open);
 * fatal() on open/read failure.
 */
std::string readFileBytes(const std::string &path);

/**
 * Non-throwing readFileBytes: returns false on open/read failure
 * (leaving @p out untouched) instead of fatal().  Cross-process
 * readers — lease monitors, migrant polls — treat a failed read as
 * "not there yet", never as a run-ending error.
 */
bool tryReadFileBytes(const std::string &path, std::string &out);

/**
 * Atomically publish @p payload at @p path ONLY if nothing exists
 * there yet: the payload is staged to a synced temp file and
 * hard-linked into place, so concurrent contenders race on the
 * link(2) — exactly one wins, everyone else gets false, and the file
 * is never observable torn.  (rename(2) silently replaces, which is
 * why claims use link.)  fatal() on non-contention I/O errors.
 */
bool publishFileExclusive(const std::string &path,
                          std::string_view payload);

} // namespace gippr::robust

#endif // GIPPR_ROBUST_ATOMIC_IO_HH_
