/**
 * @file
 * DIP implementation.
 */

#include "policies/dip.hh"

namespace gippr
{

DipPolicy::DipPolicy(const CacheConfig &config, unsigned epsilon_inv,
                     unsigned leaders, uint64_t seed)
    : ways_(config.assoc), epsilonInv_(epsilon_inv),
      stacks_(config.sets(), RecencyStack(config.assoc)),
      leaders_(config.sets(), 2,
               clampLeaders(config.sets(), 2, leaders)),
      selector_(2), rng_(seed)
{
}

unsigned
DipPolicy::policyFor(uint64_t set) const
{
    int owner = leaders_.owner(set);
    if (owner != LeaderSets::kFollower)
        return static_cast<unsigned>(owner);
    return selector_.winner();
}

unsigned
DipPolicy::victim(const AccessInfo &info)
{
    return stacks_[info.set].lruWay();
}

void
DipPolicy::onMiss(const AccessInfo &info)
{
    // Writebacks are not demand misses; they do not train the duel.
    if (info.type == AccessType::Writeback)
        return;
    int owner = leaders_.owner(info.set);
    if (owner != LeaderSets::kFollower)
        selector_.recordMiss(static_cast<unsigned>(owner));
}

void
DipPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    const unsigned policy = policyFor(info.set);
    if (policy == kLru) {
        stacks_[info.set].moveTo(way, 0);
    } else {
        // BIP: LRU-position insertion, MRU once per epsilonInv_ fills.
        const bool promote = rng_.nextBounded(epsilonInv_) == 0;
        stacks_[info.set].moveTo(way, promote ? 0 : ways_ - 1);
    }
}

void
DipPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    stacks_[info.set].moveTo(way, 0);
}

void
DipPolicy::onInvalidate(uint64_t set, unsigned way)
{
    stacks_[set].moveTo(way, ways_ - 1);
}

} // namespace gippr
