/**
 * @file
 * Random replacement, the zero-state baseline of Figure 4.
 */

#ifndef GIPPR_POLICIES_RANDOM_HH_
#define GIPPR_POLICIES_RANDOM_HH_

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "util/rng.hh"

namespace gippr
{

/** Uniform random victim; no per-set state at all. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(const CacheConfig &config, uint64_t seed = 1);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;

    std::string name() const override { return "Random"; }
    size_t stateBitsPerSet() const override { return 0; }

  private:
    unsigned ways_;
    Rng rng_;
};

} // namespace gippr

#endif // GIPPR_POLICIES_RANDOM_HH_
