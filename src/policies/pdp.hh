/**
 * @file
 * Protecting Distance based Policy (Duong et al., MICRO 2012).
 *
 * PDP protects each line from eviction for a number of set accesses
 * (the protecting distance, dp).  A sampler measures the reuse-distance
 * distribution online; each epoch a solver picks the dp that maximizes
 * the expected hit rate per unit of cache occupancy:
 *
 *     E(dp) = sum_{i<=dp} N_i
 *             -----------------------------------------
 *             sum_{i<=dp} i*N_i  +  dp * (N_t - sum_{i<=dp} N_i)
 *
 * Lines carry a small saturating "remaining protection" counter that
 * is decremented on a per-set cadence so a few bits can cover large
 * protecting distances, plus a reuse bit.  Victims are unprotected
 * lines; if every line is protected, the newest line that has not yet
 * proven itself by a re-reference is sacrificed, which approximates
 * bypass without violating inclusion (the non-bypass configuration,
 * the one the GIPPR paper compares against).  The paper charges PDP
 * 3-4 bits/line plus a specialized microcontroller; we account the
 * sampler and solver storage in globalStateBits().
 */

#ifndef GIPPR_POLICIES_PDP_HH_
#define GIPPR_POLICIES_PDP_HH_

#include <unordered_map>
#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "util/histogram.hh"

namespace gippr
{

/** Tuning knobs for PDP. */
struct PdpParams
{
    /** Per-line protection counter width (paper: 3 or 4). */
    unsigned counterBits = 4;
    /** Maximum protecting distance considered by the solver. */
    unsigned maxDistance = 256;
    /**
     * LLC accesses between dp recomputations.  The PDP paper uses
     * 512K over billion-access runs; scaled down here so the solver
     * fires several times within this repo's shorter traces.
     */
    uint64_t epochAccesses = 128 * 1024;
    /** Sample one of every 2^sampleShift sets for RD measurement. */
    unsigned sampleShift = 4;
    /** dp used before the first epoch completes. */
    unsigned initialDp = 64;
};

/** PDP replacement (non-bypass configuration). */
class PdpPolicy : public ReplacementPolicy
{
  public:
    explicit PdpPolicy(const CacheConfig &config, PdpParams params = {});

    unsigned victim(const AccessInfo &info) override;
    void onMiss(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "PDP"; }

    size_t
    stateBitsPerSet() const override
    {
        // Per-line protection counters and reuse bit, plus the
        // per-set decrement tick.
        return static_cast<size_t>(ways_) * (params_.counterBits + 1) +
               8;
    }

    size_t globalStateBits() const override;

    /** Current protecting distance (test / diagnostic aid). */
    unsigned protectingDistance() const { return dp_; }

    /**
     * Solve for the best dp given a reuse-distance histogram
     * (exposed for unit testing the solver).
     */
    static unsigned solveDp(const Histogram &rd, unsigned max_distance);

  private:
    /** Per-set bookkeeping shared by all lines in the set. */
    struct SetState
    {
        /** Accesses to this set since the last counter decrement. */
        uint16_t tick = 0;
        /** Total accesses to this set (sampler distance base). */
        uint32_t accessCount = 0;
    };

    uint8_t &prot(uint64_t set, unsigned way);
    bool sampledSet(uint64_t set) const;

    /** Record a reuse distance observation for a sampled set. */
    void sampleAccess(const AccessInfo &info);

    /** Advance the per-set decrement cadence. */
    void tickSet(uint64_t set);

    /** Quantized protection value for the current dp. */
    uint8_t protectedValue() const;

    /** Recompute dp at an epoch boundary. */
    void endEpoch();

    uint8_t &reused(uint64_t set, unsigned way);

    unsigned ways_;
    PdpParams params_;
    unsigned dp_;
    /** Set accesses represented by one counter decrement. */
    unsigned decrementPeriod_;
    std::vector<uint8_t> prot_;
    /** Per line: re-referenced since insertion (0/1). */
    std::vector<uint8_t> reused_;
    std::vector<SetState> setState_;
    Histogram rdHist_;
    uint64_t accessesThisEpoch_ = 0;
    /** Sampler: per sampled set, block -> set access count at last use. */
    std::unordered_map<uint64_t, uint32_t> lastUse_;
};

} // namespace gippr

#endif // GIPPR_POLICIES_PDP_HH_
