/**
 * @file
 * Belady MIN implementation.
 */

#include "policies/belady.hh"

#include <cassert>
#include <unordered_map>

#include "cache/replay.hh"
#include "util/log.hh"

namespace gippr
{

BeladyPolicy::BeladyPolicy(const CacheConfig &config, const Trace &trace)
    : ways_(config.assoc),
      lineNextUse_(config.sets() * config.assoc, kNever)
{
    // Backward scan: nextUse_[i] = next index referencing record i's
    // block, or kNever.
    nextUse_.assign(trace.size(), kNever);
    std::unordered_map<uint64_t, uint64_t> next_of_block;
    next_of_block.reserve(trace.size() / 2 + 16);
    const unsigned shift = config.blockShift();
    for (size_t i = trace.size(); i-- > 0;) {
        uint64_t block = trace[i].addr >> shift;
        auto it = next_of_block.find(block);
        if (it != next_of_block.end()) {
            nextUse_[i] = it->second;
            it->second = i;
        } else {
            next_of_block.emplace(block, i);
        }
    }
}

unsigned
BeladyPolicy::victim(const AccessInfo &info)
{
    // Evict the line referenced farthest in the future; a line never
    // referenced again (kNever) wins immediately.
    unsigned best_way = 0;
    uint64_t best_next = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        uint64_t next = lineNextUse_[info.set * ways_ + w];
        if (next == kNever)
            return w;
        if (next > best_next) {
            best_next = next;
            best_way = w;
        }
    }
    return best_way;
}

void
BeladyPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    if (info.sequence >= nextUse_.size())
        panic("BeladyPolicy replayed beyond its trace");
    lineNextUse_[info.set * ways_ + way] = nextUse_[info.sequence];
}

void
BeladyPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.sequence >= nextUse_.size())
        panic("BeladyPolicy replayed beyond its trace");
    lineNextUse_[info.set * ways_ + way] = nextUse_[info.sequence];
}

void
BeladyPolicy::onInvalidate(uint64_t set, unsigned way)
{
    lineNextUse_[set * ways_ + way] = kNever;
}

uint64_t
runMinMisses(const CacheConfig &config, const Trace &trace, size_t warmup)
{
    SetAssocCache cache(config,
                        std::make_unique<BeladyPolicy>(config, trace));
    replayTrace(cache, trace, warmup);
    return cache.stats().demandMisses;
}

} // namespace gippr
