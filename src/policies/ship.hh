/**
 * @file
 * Signature-based Hit Predictor (SHiP-PC, Wu et al., MICRO 2011).
 *
 * An extension baseline discussed in the paper's related work: the
 * referencing PC is hashed to a signature indexing a table of
 * saturating counters that learn whether blocks brought in by that
 * instruction are re-referenced.  Insertions predicted dead go
 * straight to the distant RRPV.  Costs the signature + outcome bit per
 * line (the paper quotes 5 extra bits/block) plus the SHCT, and needs
 * the PC at the LLC — exactly the overhead DGIPPR avoids.
 */

#ifndef GIPPR_POLICIES_SHIP_HH_
#define GIPPR_POLICIES_SHIP_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "util/sat_counter.hh"

namespace gippr
{

/** SHiP-PC on an SRRIP eviction substrate. */
class ShipPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param config     cache geometry
     * @param shct_bits  log2 of SHCT entries (default 14 -> 16K)
     * @param rrpv_bits  RRPV width
     */
    explicit ShipPolicy(const CacheConfig &config,
                        unsigned shct_bits = 14, unsigned rrpv_bits = 2);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "SHiP"; }

    size_t
    stateBitsPerSet() const override
    {
        // RRPV + signature + outcome bit per line.
        return static_cast<size_t>(ways_) *
               (rrpvBits_ + shctBits_ + 1);
    }

    size_t
    globalStateBits() const override
    {
        return (size_t{1} << shctBits_) * 2; // 2-bit SHCT entries
    }

  private:
    struct LineMeta
    {
        uint8_t rrpv;
        uint16_t signature = 0;
        bool reused = false;
    };

    LineMeta &meta(uint64_t set, unsigned way);
    uint16_t signatureOf(uint64_t pc) const;

    unsigned ways_;
    unsigned shctBits_;
    unsigned rrpvBits_;
    unsigned rrpvMax_;
    std::vector<LineMeta> meta_;
    std::vector<SatCounter> shct_;
};

} // namespace gippr

#endif // GIPPR_POLICIES_SHIP_HH_
