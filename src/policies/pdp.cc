/**
 * @file
 * PDP implementation.
 */

#include "policies/pdp.hh"
#include "util/check.hh"

namespace gippr
{

PdpPolicy::PdpPolicy(const CacheConfig &config, PdpParams params)
    : ways_(config.assoc), params_(params), dp_(params.initialDp),
      prot_(config.sets() * config.assoc, 0),
      reused_(config.sets() * config.assoc, 0),
      setState_(config.sets()), rdHist_(params.maxDistance)
{
    GIPPR_CHECK(params_.counterBits >= 2 && params_.counterBits <= 8);
    GIPPR_CHECK(params_.initialDp >= 1);
    decrementPeriod_ =
        std::max(1U, dp_ / ((1U << params_.counterBits) - 1));
}

uint8_t &
PdpPolicy::prot(uint64_t set, unsigned way)
{
    return prot_[set * ways_ + way];
}

uint8_t &
PdpPolicy::reused(uint64_t set, unsigned way)
{
    return reused_[set * ways_ + way];
}

bool
PdpPolicy::sampledSet(uint64_t set) const
{
    return (set & ((uint64_t{1} << params_.sampleShift) - 1)) == 0;
}

uint8_t
PdpPolicy::protectedValue() const
{
    const unsigned max_val = (1U << params_.counterBits) - 1;
    unsigned v = (dp_ + decrementPeriod_ - 1) / decrementPeriod_;
    return static_cast<uint8_t>(std::min(v, max_val));
}

void
PdpPolicy::sampleAccess(const AccessInfo &info)
{
    if (!sampledSet(info.set))
        return;
    SetState &st = setState_[info.set];
    auto it = lastUse_.find(info.blockAddr);
    if (it != lastUse_.end()) {
        uint32_t dist = st.accessCount - it->second;
        rdHist_.add(dist);
        it->second = st.accessCount;
    } else {
        // Bound the sampler footprint: this is a hardware structure.
        if (lastUse_.size() > 65536)
            lastUse_.clear();
        lastUse_.emplace(info.blockAddr, st.accessCount);
    }
}

void
PdpPolicy::tickSet(uint64_t set)
{
    SetState &st = setState_[set];
    ++st.accessCount;
    if (++st.tick < decrementPeriod_)
        return;
    st.tick = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        uint8_t &p = prot(set, w);
        if (p > 0)
            --p;
    }
}

unsigned
PdpPolicy::solveDp(const Histogram &rd, unsigned max_distance)
{
    const uint64_t total = rd.total();
    if (total == 0)
        return std::max(1U, max_distance / 4);
    unsigned best_dp = 1;
    double best_e = -1.0;
    for (unsigned dp = 1; dp <= max_distance; ++dp) {
        const uint64_t hits = rd.cumulative(dp);
        const uint64_t hit_time = rd.weightedCumulative(dp);
        const uint64_t miss_time =
            static_cast<uint64_t>(dp) * (total - hits);
        const uint64_t denom = hit_time + miss_time;
        if (denom == 0)
            continue;
        const double e = static_cast<double>(hits) /
                         static_cast<double>(denom);
        if (e > best_e) {
            best_e = e;
            best_dp = dp;
        }
    }
    return best_dp;
}

void
PdpPolicy::endEpoch()
{
    dp_ = solveDp(rdHist_, params_.maxDistance);
    decrementPeriod_ =
        std::max(1U, dp_ / ((1U << params_.counterBits) - 1));
    rdHist_.decay();
}

unsigned
PdpPolicy::victim(const AccessInfo &info)
{
    // Prefer an unprotected line.  When every line is protected,
    // non-bypass PDP approximates bypass by sacrificing the newest
    // *unproven* line: among lines never re-referenced since
    // insertion, the one with the largest remaining distance (the
    // most recent insertion).  Proven (reused) lines are spared so a
    // hot working set survives pollution; if everything has reused,
    // fall back to the most recently protected line.  This keeps
    // PDP's thrash resistance without violating inclusion.
    unsigned best_way = ways_;
    uint8_t best_prot = 0;
    unsigned fallback_way = 0;
    uint8_t fallback_prot = prot(info.set, 0);
    for (unsigned w = 0; w < ways_; ++w) {
        uint8_t p = prot(info.set, w);
        if (p == 0)
            return w;
        if (!reused(info.set, w) &&
            (best_way == ways_ || p > best_prot)) {
            best_prot = p;
            best_way = w;
        }
        if (p > fallback_prot) {
            fallback_prot = p;
            fallback_way = w;
        }
    }
    return best_way != ways_ ? best_way : fallback_way;
}

void
PdpPolicy::onMiss(const AccessInfo &info)
{
    (void)info;
}

void
PdpPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    sampleAccess(info);
    tickSet(info.set);
    prot(info.set, way) = protectedValue();
    reused(info.set, way) = 0;
    if (++accessesThisEpoch_ >= params_.epochAccesses) {
        accessesThisEpoch_ = 0;
        endEpoch();
    }
}

void
PdpPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    sampleAccess(info);
    tickSet(info.set);
    prot(info.set, way) = protectedValue();
    reused(info.set, way) = 1;
    if (++accessesThisEpoch_ >= params_.epochAccesses) {
        accessesThisEpoch_ = 0;
        endEpoch();
    }
}

void
PdpPolicy::onInvalidate(uint64_t set, unsigned way)
{
    prot(set, way) = 0;
    reused(set, way) = 0;
}

size_t
PdpPolicy::globalStateBits() const
{
    // Reuse-distance histogram registers plus the dp/period registers;
    // stands in for the paper's "specialized microcontroller" storage.
    return (params_.maxDistance + 1) * 16 + 2 * 16;
}

} // namespace gippr
