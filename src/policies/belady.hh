/**
 * @file
 * Belady's MIN — the offline-optimal replacement policy.
 *
 * MIN evicts the block whose next reference lies farthest in the
 * future; it minimizes misses but requires perfect future knowledge,
 * so — exactly as in the paper — it is usable only in the trace-driven
 * miss simulator (the paper's "in-house trace-based LLC simulator"),
 * never under the performance model.
 *
 * Usage contract: construct from the exact LLC-level trace that will
 * then be replayed, one SetAssocCache::access() per record, against a
 * freshly constructed cache, so that AccessInfo::sequence lines up
 * with trace indices.  runMinMisses() packages that protocol.
 */

#ifndef GIPPR_POLICIES_BELADY_HH_
#define GIPPR_POLICIES_BELADY_HH_

#include <limits>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/config.hh"
#include "cache/replacement.hh"
#include "trace/trace.hh"

namespace gippr
{

/** Offline MIN replacement over a fixed, known trace. */
class BeladyPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param config  geometry of the cache that will replay the trace
     * @param trace   the LLC access trace to be replayed
     */
    BeladyPolicy(const CacheConfig &config, const Trace &trace);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "MIN"; }

    /**
     * MIN is not implementable; report the bookkeeping an oracle would
     * need as zero so overhead tables mark it specially.
     */
    size_t stateBitsPerSet() const override { return 0; }

    /** Sentinel meaning "never referenced again". */
    static constexpr uint64_t kNever =
        std::numeric_limits<uint64_t>::max();

  private:
    unsigned ways_;
    /** For trace index i, the index of the next access to that block. */
    std::vector<uint64_t> nextUse_;
    /** Per (set, way): next-use index of the resident block. */
    std::vector<uint64_t> lineNextUse_;
};

/**
 * Convenience harness: replay @p trace against a cache of geometry
 * @p config under MIN and return the resulting demand-miss count
 * (records with indices below @p warmup are replayed but not counted).
 */
uint64_t runMinMisses(const CacheConfig &config, const Trace &trace,
                      size_t warmup = 0);

} // namespace gippr

#endif // GIPPR_POLICIES_BELADY_HH_
