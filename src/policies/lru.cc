/**
 * @file
 * True LRU implementation.
 */

#include "policies/lru.hh"

namespace gippr
{

LruPolicy::LruPolicy(const CacheConfig &config)
    : ways_(config.assoc)
{
    stacks_.assign(config.sets(), RecencyStack(ways_));
}

unsigned
LruPolicy::victim(const AccessInfo &info)
{
    return stacks_[info.set].lruWay();
}

void
LruPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    stacks_[info.set].moveTo(way, 0);
}

void
LruPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    stacks_[info.set].moveTo(way, 0);
}

void
LruPolicy::onInvalidate(uint64_t set, unsigned way)
{
    // Demote invalidated lines to LRU so they are reused first.
    stacks_[set].moveTo(way, ways_ - 1);
}

unsigned
LruPolicy::position(uint64_t set, unsigned way) const
{
    return stacks_[set].position(way);
}

} // namespace gippr
