/**
 * @file
 * True-LRU recency stack with generalized moves.
 *
 * Implements the paper's Section 2.1.2 representation: each way holds
 * an integer position in [0, k), 0 being MRU and k-1 LRU.  moveTo()
 * implements the generalized IPV move semantics of Section 2.3:
 * moving a block from position i to position j < i shifts the blocks
 * in [j, i-1] down by one; moving to j > i shifts blocks in [i+1, j]
 * up by one.  Plain LRU is the special case of always moving to 0.
 */

#ifndef GIPPR_POLICIES_RECENCY_STACK_HH_
#define GIPPR_POLICIES_RECENCY_STACK_HH_

#include <cstdint>
#include <vector>

namespace gippr
{

/** Recency stack over k ways; positions are always a permutation. */
class RecencyStack
{
  public:
    /** Construct with identity layout: way w starts at position w. */
    explicit RecencyStack(unsigned ways);

    unsigned ways() const { return static_cast<unsigned>(pos_.size()); }

    /** Current position of @p way. */
    unsigned position(unsigned way) const;

    /** Way currently occupying @p position. */
    unsigned wayAt(unsigned position) const;

    /**
     * Move @p way from its current position to @p new_pos, shifting the
     * intervening blocks per the IPV semantics.
     */
    void moveTo(unsigned way, unsigned new_pos);

    /** Way in the LRU (k-1) position — the victim under true LRU. */
    unsigned lruWay() const { return wayAt(ways() - 1); }

    /** Verify the positions form a permutation (test aid). */
    bool isPermutation() const;

  private:
    std::vector<uint8_t> pos_; // way -> position
};

} // namespace gippr

#endif // GIPPR_POLICIES_RECENCY_STACK_HH_
