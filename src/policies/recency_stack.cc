/**
 * @file
 * Recency stack implementation.
 */

#include "policies/recency_stack.hh"

#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

RecencyStack::RecencyStack(unsigned ways)
{
    GIPPR_CHECK(ways >= 1 && ways <= 255);
    pos_.resize(ways);
    for (unsigned w = 0; w < ways; ++w)
        pos_[w] = static_cast<uint8_t>(w);
}

unsigned
RecencyStack::position(unsigned way) const
{
    GIPPR_CHECK(way < ways());
    return pos_[way];
}

unsigned
RecencyStack::wayAt(unsigned position) const
{
    GIPPR_CHECK(position < ways());
    for (unsigned w = 0; w < ways(); ++w)
        if (pos_[w] == position)
            return w;
    panic("recency stack positions not a permutation");
}

void
RecencyStack::moveTo(unsigned way, unsigned new_pos)
{
    GIPPR_CHECK(way < ways());
    GIPPR_CHECK(new_pos < ways());
    const unsigned old_pos = pos_[way];
    if (new_pos == old_pos)
        return;
    if (new_pos < old_pos) {
        // Blocks in [new_pos, old_pos-1] shift down (position + 1).
        for (unsigned w = 0; w < ways(); ++w)
            if (pos_[w] >= new_pos && pos_[w] < old_pos)
                ++pos_[w];
    } else {
        // Blocks in [old_pos+1, new_pos] shift up (position - 1).
        for (unsigned w = 0; w < ways(); ++w)
            if (pos_[w] > old_pos && pos_[w] <= new_pos)
                --pos_[w];
    }
    pos_[way] = static_cast<uint8_t>(new_pos);
}

bool
RecencyStack::isPermutation() const
{
    std::vector<bool> seen(ways(), false);
    for (unsigned w = 0; w < ways(); ++w) {
        if (pos_[w] >= ways() || seen[pos_[w]])
            return false;
        seen[pos_[w]] = true;
    }
    return true;
}

} // namespace gippr
