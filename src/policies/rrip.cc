/**
 * @file
 * RRIP implementation.
 */

#include "policies/rrip.hh"
#include "util/check.hh"

#include <memory>

namespace gippr
{

RripPolicy::RripPolicy(const CacheConfig &config, Mode mode,
                       unsigned rrpv_bits, unsigned epsilon_inv,
                       unsigned leaders, uint64_t seed)
    : ways_(config.assoc), mode_(mode), rrpvBits_(rrpv_bits),
      rrpvMax_((1U << rrpv_bits) - 1), epsilonInv_(epsilon_inv),
      rrpv_(config.sets() * config.assoc,
            static_cast<uint8_t>((1U << rrpv_bits) - 1)),
      leaders_(config.sets(), 2,
               clampLeaders(config.sets(), 2, leaders)),
      selector_(2), rng_(seed)
{
    GIPPR_CHECK(rrpv_bits >= 1 && rrpv_bits <= 8);
}

uint8_t &
RripPolicy::rrpvRef(uint64_t set, unsigned way)
{
    return rrpv_[set * ways_ + way];
}

unsigned
RripPolicy::rrpv(uint64_t set, unsigned way) const
{
    return rrpv_[set * ways_ + way];
}

unsigned
RripPolicy::victim(const AccessInfo &info)
{
    // Find the leftmost line predicted "distant"; age the whole set
    // until one exists.
    for (;;) {
        for (unsigned w = 0; w < ways_; ++w) {
            if (rrpvRef(info.set, w) == rrpvMax_)
                return w;
        }
        for (unsigned w = 0; w < ways_; ++w)
            ++rrpvRef(info.set, w);
    }
}

void
RripPolicy::onMiss(const AccessInfo &info)
{
    if (mode_ != Mode::Dynamic || info.type == AccessType::Writeback)
        return;
    int owner = leaders_.owner(info.set);
    if (owner != LeaderSets::kFollower)
        selector_.recordMiss(static_cast<unsigned>(owner));
}

void
RripPolicy::insertStatic(uint64_t set, unsigned way)
{
    rrpvRef(set, way) = static_cast<uint8_t>(rrpvMax_ - 1);
}

void
RripPolicy::insertBimodal(uint64_t set, unsigned way)
{
    const bool long_insert = rng_.nextBounded(epsilonInv_) == 0;
    rrpvRef(set, way) =
        static_cast<uint8_t>(long_insert ? rrpvMax_ - 1 : rrpvMax_);
}

void
RripPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    switch (mode_) {
      case Mode::Static:
        insertStatic(info.set, way);
        return;
      case Mode::Bimodal:
        insertBimodal(info.set, way);
        return;
      case Mode::Dynamic:
        break;
    }
    // DRRIP: leaders use their own member, followers the winner.
    int owner = leaders_.owner(info.set);
    unsigned policy = owner != LeaderSets::kFollower
                          ? static_cast<unsigned>(owner)
                          : selector_.winner();
    if (policy == 0)
        insertStatic(info.set, way);
    else
        insertBimodal(info.set, way);
}

void
RripPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    rrpvRef(info.set, way) = 0;
}

void
RripPolicy::onInvalidate(uint64_t set, unsigned way)
{
    rrpvRef(set, way) = static_cast<uint8_t>(rrpvMax_);
}

std::string
RripPolicy::name() const
{
    switch (mode_) {
      case Mode::Static:
        return "SRRIP";
      case Mode::Bimodal:
        return "BRRIP";
      case Mode::Dynamic:
        return "DRRIP";
    }
    return "RRIP";
}

size_t
RripPolicy::globalStateBits() const
{
    return mode_ == Mode::Dynamic ? selector_.stateBits() : 0;
}

std::unique_ptr<RripPolicy>
makeSrrip(const CacheConfig &config, unsigned rrpv_bits)
{
    return std::make_unique<RripPolicy>(config, RripPolicy::Mode::Static,
                                        rrpv_bits);
}

std::unique_ptr<RripPolicy>
makeBrrip(const CacheConfig &config, unsigned rrpv_bits, uint64_t seed)
{
    return std::make_unique<RripPolicy>(config, RripPolicy::Mode::Bimodal,
                                        rrpv_bits, 32, 32, seed);
}

std::unique_ptr<RripPolicy>
makeDrrip(const CacheConfig &config, unsigned rrpv_bits, unsigned leaders,
          uint64_t seed)
{
    return std::make_unique<RripPolicy>(config, RripPolicy::Mode::Dynamic,
                                        rrpv_bits, 32, leaders, seed);
}

} // namespace gippr
