/**
 * @file
 * Random replacement implementation.
 */

#include "policies/random.hh"

namespace gippr
{

RandomPolicy::RandomPolicy(const CacheConfig &config, uint64_t seed)
    : ways_(config.assoc), rng_(seed)
{
}

unsigned
RandomPolicy::victim(const AccessInfo &info)
{
    (void)info;
    return static_cast<unsigned>(rng_.nextBounded(ways_));
}

void
RandomPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    (void)way;
    (void)info;
}

void
RandomPolicy::onHit(unsigned way, const AccessInfo &info)
{
    (void)way;
    (void)info;
}

} // namespace gippr
