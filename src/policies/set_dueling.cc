/**
 * @file
 * Set-dueling implementation.
 */

#include "policies/set_dueling.hh"

#include "util/bitops.hh"
#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

LeaderSets::LeaderSets(uint64_t sets, unsigned policies,
                       unsigned leaders_per_policy)
    : sets_(sets), policies_(policies),
      leadersPerPolicy_(leaders_per_policy)
{
    GIPPR_CHECK(policies_ >= 1);
    if (leadersPerPolicy_ == 0)
        fatal("set dueling requires at least one leader per policy");
    if (sets_ % leadersPerPolicy_ != 0)
        fatal("leader count must divide the number of sets");
    const uint64_t constituency = sets_ / leadersPerPolicy_;
    if (constituency < policies_)
        fatal("too many dueling policies for this leader configuration");

    owner_.assign(sets_, kFollower);
    for (unsigned c = 0; c < leadersPerPolicy_; ++c) {
        for (unsigned p = 0; p < policies_; ++p) {
            uint64_t offset = (5ULL * c + p) % constituency;
            owner_[c * constituency + offset] = static_cast<int8_t>(p);
        }
    }
}

int
LeaderSets::owner(uint64_t set) const
{
    GIPPR_CHECK(set < sets_);
    return owner_[set];
}

unsigned
clampLeaders(uint64_t sets, unsigned policies, unsigned requested)
{
    GIPPR_CHECK(policies >= 1);
    // Leave at least three quarters of the cache as followers so the
    // duel's winner actually governs most sets even on tiny test
    // geometries.
    uint64_t cap = sets / (4 * static_cast<uint64_t>(policies));
    if (cap < 1)
        cap = 1;
    uint64_t want = requested < cap ? requested : cap;
    if (want < 1)
        want = 1;
    // Round down to a power of two so the count divides the
    // (power-of-two) set count.
    uint64_t l = 1;
    while (l * 2 <= want)
        l *= 2;
    return static_cast<unsigned>(l);
}

TournamentSelector::TournamentSelector(unsigned policies,
                                       unsigned counter_bits)
    : policies_(policies), counterBits_(counter_bits)
{
    if (policies_ < 2 || !isPow2(policies_))
        fatal("tournament selector needs a power-of-two policy count");
    unsigned levels = floorLog2(policies_);
    levels_.reserve(levels);
    for (unsigned l = 0; l < levels; ++l) {
        levels_.emplace_back(policies_ >> (l + 1),
                             DuelCounter(counterBits_));
    }
}

void
TournamentSelector::recordMiss(unsigned p)
{
    GIPPR_CHECK(p < policies_);
    for (unsigned l = 0; l < levels_.size(); ++l) {
        DuelCounter &ctr = levels_[l][p >> (l + 1)];
        if (((p >> l) & 1) == 0)
            ctr.missA();
        else
            ctr.missB();
    }
}

unsigned
TournamentSelector::winner() const
{
    unsigned idx = 0;
    for (size_t l = levels_.size(); l-- > 0;) {
        unsigned side = levels_[l][idx].preferB() ? 1 : 0;
        idx = idx * 2 + side;
    }
    return idx;
}

std::vector<uint64_t>
TournamentSelector::counterValues() const
{
    std::vector<uint64_t> out;
    out.reserve(policies_ - 1);
    for (const auto &level : levels_)
        for (const DuelCounter &ctr : level)
            out.push_back(ctr.raw());
    return out;
}

std::size_t
TournamentSelector::stateBits() const
{
    return static_cast<size_t>(policies_ - 1) * counterBits_;
}

} // namespace gippr
