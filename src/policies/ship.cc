/**
 * @file
 * SHiP implementation.
 */

#include "policies/ship.hh"
#include "util/check.hh"

namespace gippr
{

ShipPolicy::ShipPolicy(const CacheConfig &config, unsigned shct_bits,
                       unsigned rrpv_bits)
    : ways_(config.assoc), shctBits_(shct_bits), rrpvBits_(rrpv_bits),
      rrpvMax_((1U << rrpv_bits) - 1)
{
    GIPPR_CHECK(shct_bits >= 4 && shct_bits <= 16);
    meta_.assign(config.sets() * config.assoc,
                 LineMeta{static_cast<uint8_t>(rrpvMax_), 0, false});
    shct_.assign(size_t{1} << shctBits_, SatCounter(2, 1));
}

ShipPolicy::LineMeta &
ShipPolicy::meta(uint64_t set, unsigned way)
{
    return meta_[set * ways_ + way];
}

uint16_t
ShipPolicy::signatureOf(uint64_t pc) const
{
    // Fold the PC down to the signature width.
    uint64_t h = pc * 0x9e3779b97f4a7c15ULL;
    return static_cast<uint16_t>((h >> (64 - shctBits_)) &
                                 ((1U << shctBits_) - 1));
}

unsigned
ShipPolicy::victim(const AccessInfo &info)
{
    for (;;) {
        for (unsigned w = 0; w < ways_; ++w) {
            if (meta(info.set, w).rrpv == rrpvMax_) {
                // Train down on a dead block (never reused).
                LineMeta &m = meta(info.set, w);
                if (!m.reused)
                    shct_[m.signature].decrement();
                return w;
            }
        }
        for (unsigned w = 0; w < ways_; ++w)
            ++meta(info.set, w).rrpv;
    }
}

void
ShipPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    LineMeta &m = meta(info.set, way);
    m.signature = signatureOf(info.pc);
    m.reused = false;
    const bool predicted_dead = shct_[m.signature].value() == 0;
    m.rrpv = static_cast<uint8_t>(predicted_dead ? rrpvMax_
                                                 : rrpvMax_ - 1);
}

void
ShipPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    LineMeta &m = meta(info.set, way);
    if (!m.reused) {
        m.reused = true;
        shct_[m.signature].increment();
    }
    m.rrpv = 0;
}

void
ShipPolicy::onInvalidate(uint64_t set, unsigned way)
{
    meta(set, way).rrpv = static_cast<uint8_t>(rrpvMax_);
    meta(set, way).reused = false;
}

} // namespace gippr
