/**
 * @file
 * Set-dueling infrastructure (Qureshi et al., ISCA 2007; Loh, MICRO
 * 2009 for the multi-policy tournament).
 *
 * A small number of "leader" sets permanently run each candidate
 * policy; saturating counters tally leader-set misses, and the
 * remaining "follower" sets adopt whichever policy is missing least.
 */

#ifndef GIPPR_POLICIES_SET_DUELING_HH_
#define GIPPR_POLICIES_SET_DUELING_HH_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/sat_counter.hh"

namespace gippr
{

/**
 * Deterministic leader-set assignment.
 *
 * The set space is divided into `leadersPerPolicy` constituencies; in
 * constituency c, policy p leads the set at offset (5*c + p) mod C
 * (C = constituency size).  The multiplier spreads the leaders across
 * set offsets so they do not all alias the same workload stride, in
 * the spirit of the DIP paper's complement-select.
 */
class LeaderSets
{
  public:
    /**
     * @param sets                total sets in the cache (power of two)
     * @param policies            number of dueling policies (>= 2)
     * @param leaders_per_policy  leader sets per policy
     */
    LeaderSets(uint64_t sets, unsigned policies,
               unsigned leaders_per_policy = 32);

    /**
     * Policy index leading @p set, or kFollower for follower sets.
     */
    int owner(uint64_t set) const;

    static constexpr int kFollower = -1;

    unsigned policies() const { return policies_; }
    unsigned leadersPerPolicy() const { return leadersPerPolicy_; }

  private:
    uint64_t sets_;
    unsigned policies_;
    unsigned leadersPerPolicy_;
    std::vector<int8_t> owner_; // set -> policy or kFollower
};

/**
 * Clamp a requested leader-set count to what a cache geometry can
 * host: the largest power of two not exceeding either the request or
 * sets/policies (so every constituency can seat one leader per
 * policy), and at least one.  Policies use this so the paper's
 * default of 32 leaders degrades gracefully on small test caches.
 */
unsigned clampLeaders(uint64_t sets, unsigned policies,
                      unsigned requested);

/**
 * Tournament selector over N = 2^m candidate policies.
 *
 * N == 2 degenerates to the single PSEL counter of DIP.  N == 4 is
 * Loh's multi-set-dueling: one counter per pair plus one meta counter
 * (three 11-bit counters total, matching the paper's Section 3.6
 * overhead accounting).  Larger powers of two build a deeper
 * tournament, used by the vector-count ablation.
 */
class TournamentSelector
{
  public:
    /**
     * @param policies      number of candidates (power of two, >= 2)
     * @param counter_bits  PSEL width (paper: 11)
     */
    explicit TournamentSelector(unsigned policies,
                                unsigned counter_bits = 11);

    /** Record one leader-set miss attributed to policy @p p. */
    void recordMiss(unsigned p);

    /** Currently winning policy for follower sets. */
    unsigned winner() const;

    /**
     * Raw PSEL counter values, tournament level-major (level 0's
     * pair counters first, the meta counter last).  This is direct
     * state access — unlike the telemetry mirror, it works in
     * GIPPR_DISABLE_TELEMETRY builds, so backend-equivalence checks
     * can compare duel outcomes exactly.
     */
    std::vector<uint64_t> counterValues() const;

    unsigned policies() const { return policies_; }

    /** Total PSEL storage in bits (the paper's "33 bits" for N=4). */
    std::size_t stateBits() const;

  private:
    unsigned policies_;
    unsigned counterBits_;
    // Level l has policies_ / 2^(l+1) counters; counters_[0] duels
    // adjacent pairs, the last level is the meta counter.
    std::vector<std::vector<DuelCounter>> levels_;
};

} // namespace gippr

#endif // GIPPR_POLICIES_SET_DUELING_HH_
