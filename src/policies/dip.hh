/**
 * @file
 * Dynamic Insertion Policy (Qureshi et al., ISCA 2007).
 *
 * Duels traditional LRU (MRU insertion) against BIP (bimodal insertion:
 * incoming blocks usually land in the LRU position, occasionally at
 * MRU so the working set can eventually be admitted).  DIP changes only
 * insertion; promotion on hit is always to MRU.  It still pays full
 * LRU's k*log2(k) bits per set — the cost the paper's DGIPPR avoids.
 */

#ifndef GIPPR_POLICIES_DIP_HH_
#define GIPPR_POLICIES_DIP_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "policies/recency_stack.hh"
#include "policies/set_dueling.hh"
#include "util/bitops.hh"
#include "util/rng.hh"

namespace gippr
{

/** DIP: set-dueling between LRU insertion and bimodal insertion. */
class DipPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param config       cache geometry
     * @param epsilon_inv  BIP inserts at MRU once per this many fills
     * @param leaders      leader sets per policy
     * @param seed         RNG seed for the bimodal throttle
     */
    explicit DipPolicy(const CacheConfig &config,
                       unsigned epsilon_inv = 32, unsigned leaders = 32,
                       uint64_t seed = 1);

    unsigned victim(const AccessInfo &info) override;
    void onMiss(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "DIP"; }

    size_t
    stateBitsPerSet() const override
    {
        return static_cast<size_t>(ways_) * ceilLog2(ways_);
    }

    size_t
    globalStateBits() const override
    {
        return selector_.stateBits();
    }

    /** True when followers are currently using BIP (test aid). */
    bool followersUseBip() const { return selector_.winner() == 1; }

  private:
    /** Policy indices in the duel. */
    static constexpr unsigned kLru = 0;
    static constexpr unsigned kBip = 1;

    /** Insertion policy governing @p set right now. */
    unsigned policyFor(uint64_t set) const;

    unsigned ways_;
    unsigned epsilonInv_;
    std::vector<RecencyStack> stacks_;
    LeaderSets leaders_;
    TournamentSelector selector_;
    Rng rng_;
};

} // namespace gippr

#endif // GIPPR_POLICIES_DIP_HH_
