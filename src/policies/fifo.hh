/**
 * @file
 * First-in-first-out replacement (classic baseline; Denning 1968).
 */

#ifndef GIPPR_POLICIES_FIFO_HH_
#define GIPPR_POLICIES_FIFO_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "util/bitops.hh"

namespace gippr
{

/**
 * Round-robin victim pointer per set; hits do not update state, which
 * is what distinguishes FIFO from LRU.
 */
class FifoPolicy : public ReplacementPolicy
{
  public:
    explicit FifoPolicy(const CacheConfig &config);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;

    std::string name() const override { return "FIFO"; }

    size_t
    stateBitsPerSet() const override
    {
        return ceilLog2(ways_);
    }

  private:
    unsigned ways_;
    std::vector<uint8_t> next_; // per-set round-robin pointer
};

} // namespace gippr

#endif // GIPPR_POLICIES_FIFO_HH_
