/**
 * @file
 * True least-recently-used replacement (the paper's baseline).
 */

#ifndef GIPPR_POLICIES_LRU_HH_
#define GIPPR_POLICIES_LRU_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "policies/recency_stack.hh"
#include "util/bitops.hh"

namespace gippr
{

/**
 * Full LRU over a recency stack: hits and fills promote to MRU,
 * victims come from the LRU position.  Costs k*log2(k) bits per set
 * (64 bits/set at 16 ways), the paper's reference cost.
 */
class LruPolicy : public ReplacementPolicy
{
  public:
    explicit LruPolicy(const CacheConfig &config);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "LRU"; }

    size_t
    stateBitsPerSet() const override
    {
        return static_cast<size_t>(ways_) * ceilLog2(ways_);
    }

    /** Stack position of a way (diagnostic / test aid). */
    unsigned position(uint64_t set, unsigned way) const;

  private:
    unsigned ways_;
    std::vector<RecencyStack> stacks_;
};

} // namespace gippr

#endif // GIPPR_POLICIES_LRU_HH_
