/**
 * @file
 * FIFO implementation.
 */

#include "policies/fifo.hh"

namespace gippr
{

FifoPolicy::FifoPolicy(const CacheConfig &config)
    : ways_(config.assoc), next_(config.sets(), 0)
{
}

unsigned
FifoPolicy::victim(const AccessInfo &info)
{
    return next_[info.set];
}

void
FifoPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    // Advance the pointer past the way we just filled so the oldest
    // line is evicted next.  When filling invalid ways in way order the
    // pointer tracks them naturally.
    if (way == next_[info.set])
        next_[info.set] = static_cast<uint8_t>((way + 1) % ways_);
}

void
FifoPolicy::onHit(unsigned way, const AccessInfo &info)
{
    (void)way;
    (void)info;
}

} // namespace gippr
