/**
 * @file
 * Re-Reference Interval Prediction policies (Jaleel et al., ISCA 2010).
 *
 * Each line carries an M-bit re-reference prediction value (RRPV);
 * larger means "predicted re-referenced further in the future".  The
 * victim is any line with the maximum RRPV (2^M - 1); if none exists,
 * all RRPVs in the set are incremented until one appears.  Hits set
 * the line's RRPV to 0 (hit-priority promotion).
 *
 *  - SRRIP inserts with RRPV = max-1 ("long re-reference").
 *  - BRRIP inserts with RRPV = max, and with low probability max-1.
 *  - DRRIP set-duels SRRIP against BRRIP, which is the paper's main
 *    storage/performance comparison point (2 bits per block).
 */

#ifndef GIPPR_POLICIES_RRIP_HH_
#define GIPPR_POLICIES_RRIP_HH_

#include <memory>
#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "policies/set_dueling.hh"
#include "util/rng.hh"

namespace gippr
{

/** Shared RRIP machinery; insertion behaviour comes from the mode. */
class RripPolicy : public ReplacementPolicy
{
  public:
    enum class Mode { Static, Bimodal, Dynamic };

    /**
     * @param config       cache geometry
     * @param mode         SRRIP / BRRIP / DRRIP
     * @param rrpv_bits    RRPV width (paper comparisons use 2)
     * @param epsilon_inv  BRRIP inserts "long" once per this many fills
     * @param leaders      leader sets per policy (DRRIP only)
     * @param seed         RNG seed for the bimodal throttle
     */
    RripPolicy(const CacheConfig &config, Mode mode,
               unsigned rrpv_bits = 2, unsigned epsilon_inv = 32,
               unsigned leaders = 32, uint64_t seed = 1);

    unsigned victim(const AccessInfo &info) override;
    void onMiss(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override;

    size_t
    stateBitsPerSet() const override
    {
        return static_cast<size_t>(ways_) * rrpvBits_;
    }

    size_t globalStateBits() const override;

    /** Current RRPV of (set, way) — test aid. */
    unsigned rrpv(uint64_t set, unsigned way) const;

  protected:
    /** Insert using SRRIP's "long" prediction. */
    void insertStatic(uint64_t set, unsigned way);
    /** Insert using BRRIP's mostly-"distant" prediction. */
    void insertBimodal(uint64_t set, unsigned way);

  private:
    uint8_t &rrpvRef(uint64_t set, unsigned way);

    unsigned ways_;
    Mode mode_;
    unsigned rrpvBits_;
    unsigned rrpvMax_;
    unsigned epsilonInv_;
    std::vector<uint8_t> rrpv_;
    LeaderSets leaders_;
    TournamentSelector selector_;
    Rng rng_;
};

/** Convenience aliases matching the paper's terminology. */
std::unique_ptr<RripPolicy> makeSrrip(const CacheConfig &config,
                                      unsigned rrpv_bits = 2);
std::unique_ptr<RripPolicy> makeBrrip(const CacheConfig &config,
                                      unsigned rrpv_bits = 2,
                                      uint64_t seed = 1);
std::unique_ptr<RripPolicy> makeDrrip(const CacheConfig &config,
                                      unsigned rrpv_bits = 2,
                                      unsigned leaders = 32,
                                      uint64_t seed = 1);

} // namespace gippr

#endif // GIPPR_POLICIES_RRIP_HH_
