/**
 * @file
 * Island service coordinator: fork/exec workers, supervise leases,
 * reclaim and respawn dead islands, drain on shutdown.
 */

#include "island/service.hh"

#include <chrono>
#include <csignal>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "island/island.hh"
#include "robust/atomic_io.hh"
#include "robust/lease.hh"
#include "robust/shutdown.hh"
#include "util/log.hh"

namespace gippr::island
{

namespace
{

/** Live supervision state for one island's worker. */
struct Slot
{
    int64_t pid = -1;
    IslandStatus status;
};

/**
 * Fork and exec one worker.  The argv vector is fully built before
 * fork() so the child does nothing but execv + _exit.
 */
int64_t
spawnWorker(const ServiceParams &params, uint32_t islandIdx,
            uint64_t incarnation)
{
    std::vector<std::string> args = params.workerCommand;
    args.push_back("--worker-id");
    args.push_back(std::to_string(islandIdx));
    args.push_back("--incarnation");
    args.push_back(std::to_string(incarnation));
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t child = ::fork();
    if (child < 0)
        fatal("island service: fork failed for island " +
              std::to_string(islandIdx));
    if (child == 0) {
        ::execv(argv[0], argv.data());
        ::_exit(127); // exec failed; the parent sees a crash
    }
    inform("island " + std::to_string(islandIdx) + ": worker pid " +
           std::to_string(child) + " (incarnation " +
           std::to_string(incarnation) + ")");
    return child;
}

/** Poll one island's lease file into the monitor. */
void
observeLease(const ServiceParams &params, uint32_t islandIdx,
             robust::LeaseMonitor &monitor)
{
    std::string body;
    robust::LeaseInfo info;
    const bool ok =
        robust::tryReadFileBytes(leasePath(params.workdir, islandIdx),
                                 body) &&
        robust::decodeLease(body, info) && info.island == islandIdx;
    monitor.observe(islandIdx, ok, ok ? info.seq : 0,
                    ok ? info.incarnation : 0, robust::steadyNowMs());
}

/**
 * Reclaim a dead island: win the exclusive claim for the next
 * incarnation, then spawn the replacement.  Returns false (marking
 * the island dead) when the budget is exhausted or the claim was
 * lost to another reclaimer.
 */
bool
reclaimIsland(const ServiceParams &params, uint32_t islandIdx,
              Slot &slot)
{
    if (slot.status.respawns >= params.maxRespawns) {
        warn("island " + std::to_string(islandIdx) +
             ": respawn budget (" +
             std::to_string(params.maxRespawns) +
             ") exhausted; leaving it dead");
        return false;
    }
    const uint64_t next = slot.status.incarnation + 1;
    const std::string claim =
        claimPath(params.workdir, islandIdx, next);
    const std::string token = "gippr-claim v1 island=" +
                              std::to_string(islandIdx) +
                              " incarnation=" + std::to_string(next) +
                              " pid=" + std::to_string(::getpid()) +
                              "\n";
    if (!robust::publishFileExclusive(claim, token)) {
        warn("island " + std::to_string(islandIdx) +
             ": lost the reclaim race for incarnation " +
             std::to_string(next) + "; not respawning");
        return false;
    }
    slot.status.incarnation = next;
    ++slot.status.respawns;
    slot.pid = spawnWorker(params, islandIdx, next);
    return true;
}

} // namespace

bool
ServiceOutcome::allCompleted() const
{
    for (const IslandStatus &s : islands)
        if (!s.completed)
            return false;
    return true;
}

ServiceOutcome
runIslandService(const ServiceParams &params)
{
    if (params.workerCommand.empty())
        fatal("island service: empty worker command");

    std::vector<Slot> slots(params.islands);
    for (uint32_t i = 0; i < params.islands; ++i)
        slots[i].pid = spawnWorker(params, i, 0);

    robust::LeaseMonitor monitor(params.staleMs);
    ServiceOutcome outcome;
    bool draining = false;

    const auto any_live = [&]() {
        for (const Slot &s : slots)
            if (s.pid >= 0)
                return true;
        return false;
    };

    while (any_live()) {
        if (!draining && robust::ShutdownGuard::requested()) {
            // Forward the drain from the supervision loop — the
            // signal handler itself only set a flag.
            draining = true;
            outcome.drained = true;
            inform("island service: draining " +
                   std::to_string(params.islands) + " islands");
            for (const Slot &s : slots)
                if (s.pid >= 0)
                    (void)::kill(static_cast<pid_t>(s.pid), SIGTERM);
        }

        for (uint32_t i = 0; i < params.islands; ++i) {
            Slot &slot = slots[i];
            if (slot.pid < 0)
                continue;
            int wstatus = 0;
            const pid_t got = ::waitpid(
                static_cast<pid_t>(slot.pid), &wstatus, WNOHANG);
            if (got == 0) {
                // Still running: watch for a silent hang.
                observeLease(params, i, monitor);
                if (!draining &&
                    monitor.stale(i, robust::steadyNowMs())) {
                    warn("island " + std::to_string(i) +
                         ": lease stale (pid " +
                         std::to_string(slot.pid) +
                         " hung); killing and reclaiming");
                    (void)::kill(static_cast<pid_t>(slot.pid),
                                 SIGKILL);
                    (void)::waitpid(static_cast<pid_t>(slot.pid),
                                    &wstatus, 0);
                    slot.pid = -1;
                    monitor.forget(i);
                    if (reclaimIsland(params, i, slot))
                        ++outcome.recoveredCrashes;
                    else
                        slot.status.dead = true;
                }
                continue;
            }
            if (got < 0) {
                warn("island " + std::to_string(i) +
                     ": waitpid failed; treating worker as dead");
            }
            // Worker exited.
            slot.pid = -1;
            monitor.forget(i);
            if (got > 0 && WIFEXITED(wstatus) &&
                WEXITSTATUS(wstatus) == 0) {
                slot.status.completed = true;
                inform("island " + std::to_string(i) + " completed");
                continue;
            }
            if (draining) {
                slot.status.drainedWorker = true;
                continue;
            }
            if (reclaimIsland(params, i, slot))
                ++outcome.recoveredCrashes;
            else
                slot.status.dead = true;
        }

        if (any_live())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(params.pollMs));
    }

    outcome.islands.reserve(slots.size());
    for (Slot &s : slots)
        outcome.islands.push_back(s.status);
    return outcome;
}

} // namespace gippr::island
