/**
 * @file
 * Island-model GA: per-island worker, migrant exchange, merge.
 *
 * The paper evolved its vectors on a 200-CPU cluster for a day; this
 * subsystem is the reproduction's scaled-down equivalent.  N workers
 * (threads in-process for tests, processes under the coordinator in
 * src/island/service.hh) each evolve an independent island whose RNG
 * stream derives from one master seed, and every exchangeEvery
 * generations publish their top-k individuals as a CRC-guarded GPCK
 * file in the shared coordination directory, then poll — bounded
 * retryWithBackoff with a deadline cap — for every peer's file from
 * the same round and fold the arrivals into their population.
 *
 * The determinism contract mirrors PR 5's resume bit-identity, but
 * across processes: island state checkpoints capture every generation
 * boundary, migrant publication is idempotent (a resumed worker
 * republishes byte-identical files), and incorporation consumes no
 * RNG — so a run that suffered any number of kill/resume cycles
 * merges to an artifact bit-identical to an undisturbed same-seed
 * run, *provided* every killed worker is reclaimed before its peers'
 * exchange deadline expires.  A peer that stays dead past the
 * deadline is the documented degraded path: the round is counted in
 * exchangesMissed and the island continues solo.
 *
 * Coordination-directory layout (all files written atomically):
 *
 *   lease.<i>                  heartbeat (robust/lease.hh)
 *   island.<i>.state.gpck      boundary checkpoint (kind island-state)
 *   island.<i>.final.gpck      finished island (kind island-final)
 *   migrants.<i>.r<r>.gpck     island i's emigrants for round r
 *   claim.<i>.inc<k>           reclaim token (link(2) exclusivity)
 */

#ifndef GIPPR_ISLAND_ISLAND_HH_
#define GIPPR_ISLAND_ISLAND_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ga/fitness.hh"
#include "ga/ga_checkpoint.hh"
#include "ga/genetic.hh"

namespace gippr::island
{

/** Knobs shared by every worker of one island run. */
struct IslandParams
{
    /** Worker count; each owns one island. */
    uint32_t islands = 4;
    /** Master seed; per-island streams derive via islandSeed(). */
    uint64_t masterSeed = 12345;
    /** Individuals in each island's generation zero. */
    size_t initialPopulation = 400;
    /** Individuals in subsequent generations. */
    size_t population = 120;
    /** Generations after the first, per island. */
    unsigned generations = 25;
    /** Probability an offspring suffers one random-element mutation. */
    double mutationRate = 0.05;
    /** Individuals copied unchanged to the next generation. */
    size_t elites = 4;
    /** Tournament size for parent selection. */
    unsigned tournament = 3;
    /** Worker threads for fitness evaluation (per island). */
    unsigned threads = 4;
    /** Exchange migrants after every E completed generations
        (0 disables exchange entirely). */
    unsigned exchangeEvery = 5;
    /** Top-k individuals published per exchange round. */
    size_t migrants = 4;
    /** Shared coordination directory (must exist). */
    std::string workdir;
    /**
     * Budget for waiting on one peer's migrant file (ms).  Must
     * comfortably exceed worst-case worker respawn + catch-up time,
     * or recovered crashes degrade into missed exchanges and the
     * kill/resume bit-identity guarantee is forfeit.  0 polls once.
     */
    unsigned exchangeDeadlineMs = 60000;
    /** Poll interval while waiting on peers (ms). */
    unsigned pollMs = 20;
    /** Generations between periodic state checkpoints (exchange
        boundaries and the final generation always checkpoint). */
    unsigned checkpointEvery = 1;
    /** Optional sink for the "ga_eval" phase (may be null). */
    telemetry::PhaseTimings *timings = nullptr;
};

/** Per-worker identity and control knobs. */
struct IslandWorkerOptions
{
    /** Island this worker owns (< params.islands). */
    uint32_t island = 0;
    /** Respawn generation (0 = original spawn); lease metadata. */
    uint64_t incarnation = 0;
    /** Load an existing state/final checkpoint when present. */
    bool resume = true;
    /** Honour ShutdownGuard::requested() at boundaries. */
    bool watchShutdown = true;
    /**
     * Test hook: polled (with the completed-generation count) at
     * every boundary and while waiting on peers; returning true
     * drains the island to a checkpoint, like a shutdown signal.
     */
    std::function<bool(uint64_t)> stopHook;
};

/** What one worker invocation produced. */
struct IslandOutcome
{
    /** True when drained early; the state checkpoint resumes it. */
    bool interrupted = false;
    /** Island state at return (final state when not interrupted). */
    IslandCheckpoint state;
};

/** Coordination-directory file names. */
std::string leasePath(const std::string &workdir, uint32_t island);
std::string statePath(const std::string &workdir, uint32_t island);
std::string finalPath(const std::string &workdir, uint32_t island);
std::string migrantsPath(const std::string &workdir, uint32_t island,
                         uint64_t round);
std::string claimPath(const std::string &workdir, uint32_t island,
                      uint64_t incarnation);

/** Deterministic per-island RNG seed derived from the master seed. */
uint64_t islandSeed(uint64_t masterSeed, uint32_t island);

/**
 * Digest over every parameter that shapes an island run's results
 * (threads and checkpoint cadence excluded); stamped into every
 * checkpoint and migrant file so islands of different runs can never
 * cross-pollinate.
 */
uint64_t islandConfigDigest(const IslandParams &params,
                            IpvFamily family,
                            const FitnessEvaluator &fitness);

/**
 * Run one island to completion (or to a drain): evolve, publish and
 * incorporate migrants at each exchange boundary, heartbeat the
 * lease, checkpoint at boundaries.  Resume (opts.resume) restores the
 * last boundary state — including a pending, partially completed
 * exchange round, which is redone idempotently.
 */
IslandOutcome runIslandWorker(const FitnessEvaluator &fitness,
                              IpvFamily family,
                              const IslandParams &params,
                              const IslandWorkerOptions &opts);

/** Result of folding the islands' final artifacts. */
struct IslandMerge
{
    /**
     * Deterministic merged result: the union of final populations
     * ordered by (fitness desc, IPV bytes), history = per-generation
     * max across islands.  generationSeconds is intentionally empty —
     * wall-clock timings are nondeterministic and must not leak into
     * the byte-compared merged artifact.
     */
    GaResult result;
    /** Final checkpoint of every completed island, island order. */
    std::vector<IslandCheckpoint> finals;
    /** Islands with no final artifact (permanently dead workers). */
    std::vector<uint32_t> missing;
    /** Total peer exchanges missed across completed islands. */
    uint64_t exchangesMissed = 0;
};

/**
 * Load every island's final checkpoint and merge deterministically.
 * With @p allowMissing, islands without a final artifact are recorded
 * in IslandMerge::missing instead of failing the merge (degraded
 * completion); at least one island must have finished either way.
 */
IslandMerge mergeIslands(const IslandParams &params, IpvFamily family,
                         const FitnessEvaluator &fitness,
                         bool allowMissing);

/** Scripted worker death for deterministic crash tests. */
struct KillEvent
{
    uint32_t island = 0;
    /** Drain when this many generations are completed (fires once). */
    uint64_t generation = 0;
};

/** In-process service crash/respawn plan. */
struct KillPlan
{
    std::vector<KillEvent> kills;
    /** Respawn budget per island; an island beyond it stays dead. */
    uint64_t maxRespawns = 100;
};

/** Operational tallies from an in-process service run. */
struct InProcessStats
{
    /** Workers respawned after a (scripted) drain, per island. */
    std::vector<uint64_t> respawns;
};

/**
 * Run all islands as threads of this process against the real
 * file-based exchange protocol, respawning any island the kill plan
 * drains — the deterministic stand-in for the process coordinator
 * that ctest can exercise under ASan.  Returns the merged result
 * (allowMissing = true, so out-of-respawn-budget islands surface as
 * IslandMerge::missing).
 */
IslandMerge runIslandsInProcess(const FitnessEvaluator &fitness,
                                IpvFamily family,
                                const IslandParams &params,
                                const KillPlan &plan = {},
                                InProcessStats *stats = nullptr);

} // namespace gippr::island

#endif // GIPPR_ISLAND_ISLAND_HH_
