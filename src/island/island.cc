/**
 * @file
 * Island worker, migrant exchange, deterministic merge, and the
 * in-process (threaded) island service used by the tests.
 */

#include "island/island.hh"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "ga/breeding.hh"
#include "ga/random_search.hh"
#include "robust/atomic_io.hh"
#include "robust/checkpoint.hh"
#include "robust/lease.hh"
#include "robust/shutdown.hh"
#include "util/log.hh"

namespace gippr::island
{

namespace
{

/**
 * Exchange round due at boundary @p done (0 when none): rounds fire
 * after E, 2E, ... completed generations, never at the final boundary
 * (the merge folds full populations anyway) and never with fewer than
 * two islands.
 */
uint64_t
roundDueAt(uint64_t done, const IslandParams &params)
{
    const unsigned e = params.exchangeEvery;
    if (e == 0 || params.islands < 2)
        return 0;
    if (done == 0 || done >= params.generations)
        return 0;
    return done % e == 0 ? done / e : 0;
}

/**
 * Poll for peer @p peer's round-@p round migrant file until it
 * arrives, the deadline budget runs out, or a drain is requested.
 * Every poll heartbeats @p lease — an island stalled on a dead peer
 * is waiting, not dead.  Sets @p stopped instead of returning a
 * result when a drain interrupts the wait.
 */
bool
waitForMigrants(const IslandParams &params, uint32_t peer,
                uint64_t round, uint64_t configDigest,
                robust::LeaseWriter &lease,
                const std::function<bool()> &stopRequested,
                IslandMigrants &out, bool &stopped)
{
    const std::string path =
        migrantsPath(params.workdir, peer, round);
    robust::RetryPolicy policy;
    const unsigned poll = std::max(1u, params.pollMs);
    policy.baseDelayMs = poll;
    policy.maxDelayMs = poll;
    policy.deadlineMs = params.exchangeDeadlineMs;
    policy.attempts = params.exchangeDeadlineMs / poll + 2;
    const bool got = robust::retryWithBackoff(policy, [&]() {
        lease.beat();
        if (stopRequested()) {
            stopped = true;
            return true; // stop polling; caller drains
        }
        IslandMigrants m;
        if (!robust::checkpointExists(path) ||
            !tryLoadIslandMigrants(path, configDigest, m) ||
            m.island != peer || m.round != round)
            return false;
        out = std::move(m);
        return true;
    });
    return got && !stopped;
}

/** Deterministic merge order: fitness desc, then IPV bytes. */
bool
mergedOrder(const SampledIpv &a, const SampledIpv &b)
{
    if (a.fitness != b.fitness)
        return a.fitness > b.fitness;
    return a.ipv.entries() < b.ipv.entries();
}

} // namespace

std::string
leasePath(const std::string &workdir, uint32_t island)
{
    return workdir + "/lease." + std::to_string(island);
}

std::string
statePath(const std::string &workdir, uint32_t island)
{
    return workdir + "/island." + std::to_string(island) +
           ".state.gpck";
}

std::string
finalPath(const std::string &workdir, uint32_t island)
{
    return workdir + "/island." + std::to_string(island) +
           ".final.gpck";
}

std::string
migrantsPath(const std::string &workdir, uint32_t island,
             uint64_t round)
{
    return workdir + "/migrants." + std::to_string(island) + ".r" +
           std::to_string(round) + ".gpck";
}

std::string
claimPath(const std::string &workdir, uint32_t island,
          uint64_t incarnation)
{
    return workdir + "/claim." + std::to_string(island) + ".inc" +
           std::to_string(incarnation);
}

uint64_t
islandSeed(uint64_t masterSeed, uint32_t island)
{
    // Two FNV-1a rounds decorrelate the per-island streams; +1 keeps
    // island 0 from collapsing to a digest of the seed alone.
    return digestMix(digestMix(kDigestBasis, masterSeed),
                     static_cast<uint64_t>(island) + 1);
}

uint64_t
islandConfigDigest(const IslandParams &params, IpvFamily family,
                   const FitnessEvaluator &fitness)
{
    uint64_t d = kDigestBasis;
    d = digestMix(d, 0x69736c61ULL); // "isla" tag
    d = digestMix(d, static_cast<uint64_t>(family));
    d = digestMix(d, params.masterSeed);
    d = digestMix(d, params.islands);
    d = digestMix(d, params.initialPopulation);
    d = digestMix(d, params.population);
    d = digestMix(d, params.generations);
    uint64_t rate_bits;
    static_assert(sizeof(rate_bits) == sizeof(params.mutationRate));
    std::memcpy(&rate_bits, &params.mutationRate, sizeof(rate_bits));
    d = digestMix(d, rate_bits);
    d = digestMix(d, params.elites);
    d = digestMix(d, params.tournament);
    d = digestMix(d, params.exchangeEvery);
    d = digestMix(d, params.migrants);
    d = digestMix(d, fitness.batchWidth());
    d = digestMix(d, fitness.memoCapacity());
    return d;
}

IslandOutcome
runIslandWorker(const FitnessEvaluator &fitness, IpvFamily family,
                const IslandParams &params,
                const IslandWorkerOptions &opts)
{
    if (opts.island >= params.islands)
        fatal("island worker index " + std::to_string(opts.island) +
              " out of range (islands=" +
              std::to_string(params.islands) + ")");
    const unsigned ways = familyArity(family, fitness.llc());
    const uint64_t config =
        islandConfigDigest(params, family, fitness);
    const uint64_t suite = fitness.traceSetDigest();
    const uint32_t self = opts.island;
    const std::string state_path = statePath(params.workdir, self);
    const std::string final_path = finalPath(params.workdir, self);

    const auto stop_requested = [&](uint64_t done) {
        if (opts.stopHook && opts.stopHook(done))
            return true;
        return opts.watchShutdown &&
               robust::ShutdownGuard::requested();
    };

    robust::LeaseWriter lease(leasePath(params.workdir, self), self,
                              static_cast<int64_t>(::getpid()),
                              opts.incarnation);
    lease.beat();

    // An island that already finished: a reclaimed worker may be
    // respawned after its predecessor wrote the final artifact.
    if (opts.resume && robust::checkpointExists(final_path)) {
        IslandOutcome out;
        out.state =
            loadIslandCheckpoint(final_path, config, suite, true);
        return out;
    }

    IslandCheckpoint ck;
    ck.configDigest = config;
    ck.suiteDigest = suite;
    ck.island = self;
    Rng rng(islandSeed(params.masterSeed, self));

    const auto save = [&](bool final) {
        ck.rngState = rng.state();
        saveIslandCheckpoint(final ? final_path : state_path, ck,
                             final);
    };
    const auto drain = [&]() {
        save(false);
        inform("island " + std::to_string(self) +
               " drained at generation " +
               std::to_string(ck.generation) + "/" +
               std::to_string(params.generations));
        IslandOutcome out;
        out.interrupted = true;
        out.state = ck;
        return out;
    };

    bool resumed = false;
    if (opts.resume && robust::checkpointExists(state_path)) {
        ck = loadIslandCheckpoint(state_path, config, suite, false);
        if (ck.island != self)
            fatal("island checkpoint " + state_path +
                  " belongs to island " + std::to_string(ck.island) +
                  ", not " + std::to_string(self));
        rng.setState(ck.rngState);
        resumed = true;
        inform("island " + std::to_string(self) +
               " resumed at generation " +
               std::to_string(ck.generation) + "/" +
               std::to_string(params.generations));
    }

    if (!resumed) {
        ck.population.reserve(params.initialPopulation);
        while (ck.population.size() < params.initialPopulation)
            ck.population.push_back({randomIpv(ways, rng), 0.0});
        const double secs =
            evaluatePopulation(fitness, family, ck.population, 0,
                               params.threads, params.timings);
        sortByFitnessDesc(ck.population);
        ck.history.push_back(ck.population.front().fitness);
        ck.generationSeconds.push_back(secs);
        save(false);
        lease.beat();
    }

    for (;;) {
        // Exchange due at this boundary?  Covers both the fresh case
        // and a resume that interrupted a partially completed round
        // (exchangesDone < due): publication is idempotent — the
        // boundary population is checkpointed before the round, so a
        // redone publish emits byte-identical migrants.
        const uint64_t due = roundDueAt(ck.generation, params);
        if (due != 0 && ck.exchangesDone < due) {
            if (stop_requested(ck.generation))
                return drain();
            IslandMigrants mine;
            mine.configDigest = config;
            mine.island = self;
            mine.round = due;
            const size_t k =
                std::min(params.migrants, ck.population.size());
            mine.migrants.assign(
                ck.population.begin(),
                ck.population.begin() + static_cast<long>(k));
            saveIslandMigrants(
                migrantsPath(params.workdir, self, due), mine);

            bool stopped = false;
            uint64_t missed = 0;
            std::vector<IslandMigrants> arrived;
            for (uint32_t p = 0; p < params.islands && !stopped;
                 ++p) {
                if (p == self)
                    continue;
                IslandMigrants m;
                if (waitForMigrants(
                        params, p, due, config, lease,
                        [&]() { return stop_requested(ck.generation); },
                        m, stopped)) {
                    arrived.push_back(std::move(m));
                } else if (!stopped) {
                    ++missed;
                    warn("island " + std::to_string(self) +
                         " missed migrants from island " +
                         std::to_string(p) + " in round " +
                         std::to_string(due) +
                         " (deadline/corrupt); continuing solo");
                }
            }
            if (stopped)
                return drain(); // round redone whole on resume
            // Incorporate deterministically: append arrivals in
            // ascending island order, re-rank, keep the population
            // size.  No RNG is consumed, so the island's stream stays
            // aligned with an exchange-free replay of the same seed.
            const size_t keep = ck.population.size();
            for (const IslandMigrants &m : arrived)
                for (const SampledIpv &s : m.migrants)
                    ck.population.push_back(s);
            sortByFitnessDesc(ck.population);
            ck.population.resize(keep);
            ck.exchangesDone = due;
            ck.exchangesMissed += missed;
            save(false);
            lease.beat();
        }

        if (ck.generation >= params.generations)
            break;
        if (stop_requested(ck.generation))
            return drain();

        // Breed one generation — operator order and RNG consumption
        // identical to evolveIpv (shared primitives, ga/breeding.hh).
        std::vector<SampledIpv> next;
        next.reserve(params.population);
        const size_t elites =
            std::min(params.elites, ck.population.size());
        for (size_t e = 0; e < elites; ++e)
            next.push_back(ck.population[e]);
        while (next.size() < params.population) {
            const SampledIpv &pa =
                selectParent(ck.population, params.tournament, rng);
            const SampledIpv &pb =
                selectParent(ck.population, params.tournament, rng);
            Ipv child = mutate(crossover(pa.ipv, pb.ipv, rng),
                               params.mutationRate, ways, rng);
            next.push_back({std::move(child), 0.0});
        }
        const double secs =
            evaluatePopulation(fitness, family, next, elites,
                               params.threads, params.timings);
        sortByFitnessDesc(next);
        ck.population = std::move(next);
        ++ck.generation;
        ck.history.push_back(ck.population.front().fitness);
        ck.generationSeconds.push_back(secs);
        lease.beat();

        const uint64_t next_due = roundDueAt(ck.generation, params);
        const bool must_save =
            ck.generation % std::max(1u, params.checkpointEvery) ==
                0 ||
            ck.generation == params.generations ||
            (next_due != 0 && ck.exchangesDone < next_due);
        if (must_save)
            save(false);
    }

    save(true);
    IslandOutcome out;
    out.state = std::move(ck);
    return out;
}

IslandMerge
mergeIslands(const IslandParams &params, IpvFamily family,
             const FitnessEvaluator &fitness, bool allowMissing)
{
    const uint64_t config =
        islandConfigDigest(params, family, fitness);
    const uint64_t suite = fitness.traceSetDigest();

    IslandMerge merge;
    for (uint32_t i = 0; i < params.islands; ++i) {
        const std::string path = finalPath(params.workdir, i);
        if (!robust::checkpointExists(path)) {
            if (!allowMissing)
                fatal("island merge: island " + std::to_string(i) +
                      " has no final artifact at " + path);
            merge.missing.push_back(i);
            continue;
        }
        IslandCheckpoint ck =
            loadIslandCheckpoint(path, config, suite, true);
        if (ck.island != i)
            fatal("island merge: " + path + " belongs to island " +
                  std::to_string(ck.island) + ", not " +
                  std::to_string(i));
        if (ck.generation != params.generations)
            fatal("island merge: " + path + " stopped at generation " +
                  std::to_string(ck.generation) + " of " +
                  std::to_string(params.generations) +
                  "; refusing to merge a non-final island");
        merge.exchangesMissed += ck.exchangesMissed;
        merge.finals.push_back(std::move(ck));
    }
    if (merge.finals.empty())
        fatal("island merge: no completed islands in " +
              params.workdir);

    GaResult &result = merge.result;
    for (const IslandCheckpoint &ck : merge.finals)
        result.finalPopulation.insert(result.finalPopulation.end(),
                                      ck.population.begin(),
                                      ck.population.end());
    std::sort(result.finalPopulation.begin(),
              result.finalPopulation.end(), mergedOrder);
    result.best = result.finalPopulation.front().ipv;
    result.bestFitness = result.finalPopulation.front().fitness;
    // Convergence curve: best fitness across islands per generation.
    result.history.assign(params.generations + 1, 0.0);
    for (const IslandCheckpoint &ck : merge.finals) {
        if (ck.history.size() != result.history.size())
            fatal("island merge: island " + std::to_string(ck.island) +
                  " recorded " + std::to_string(ck.history.size()) +
                  " history points, expected " +
                  std::to_string(result.history.size()));
        for (size_t g = 0; g < ck.history.size(); ++g)
            result.history[g] =
                std::max(result.history[g], ck.history[g]);
    }
    // generationSeconds stays empty on purpose: wall-clock timings
    // are nondeterministic and must never reach the byte-compared
    // merged artifact.
    return merge;
}

IslandMerge
runIslandsInProcess(const FitnessEvaluator &fitness, IpvFamily family,
                    const IslandParams &params, const KillPlan &plan,
                    InProcessStats *stats)
{
    struct ScriptedKill
    {
        KillEvent event;
        bool fired = false;
    };
    std::mutex mu;
    std::vector<ScriptedKill> kills;
    kills.reserve(plan.kills.size());
    for (const KillEvent &e : plan.kills)
        kills.push_back({e, false});
    std::vector<uint64_t> respawns(params.islands, 0);
    std::vector<std::string> errors(params.islands);

    const auto worker = [&](uint32_t i) {
        uint64_t incarnation = 0;
        try {
            for (;;) {
                IslandWorkerOptions opts;
                opts.island = i;
                opts.incarnation = incarnation;
                opts.resume = true;
                opts.watchShutdown = false;
                opts.stopHook = [&, i](uint64_t done) {
                    std::lock_guard<std::mutex> lock(mu);
                    for (ScriptedKill &k : kills) {
                        if (!k.fired && k.event.island == i &&
                            k.event.generation == done) {
                            k.fired = true;
                            return true;
                        }
                    }
                    return false;
                };
                const IslandOutcome outcome =
                    runIslandWorker(fitness, family, params, opts);
                if (!outcome.interrupted)
                    return;
                if (respawns[i] >= plan.maxRespawns)
                    return; // stays dead: degraded completion
                ++respawns[i];
                ++incarnation;
            }
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lock(mu);
            errors[i] = e.what();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(params.islands);
    for (uint32_t i = 0; i < params.islands; ++i)
        threads.emplace_back(worker, i);
    for (std::thread &t : threads)
        t.join();
    for (uint32_t i = 0; i < params.islands; ++i)
        if (!errors[i].empty())
            fatal("island " + std::to_string(i) + " failed: " +
                  errors[i]);

    if (stats)
        stats->respawns = respawns;
    return mergeIslands(params, family, fitness, true);
}

} // namespace gippr::island
