/**
 * @file
 * Multi-process island service coordinator.
 *
 * The coordinator forks one worker process per island (re-exec'ing
 * this binary with --worker-id appended), then supervises: worker
 * death is detected by waitpid, silent hangs by the lease monitor
 * (robust/lease.hh); either way the island is reclaimed by winning a
 * link(2)-exclusive claim file and a replacement worker is spawned
 * with --resume semantics and a bumped incarnation, picking the
 * island up from its last checkpoint.  SIGINT/SIGTERM (observed via
 * ShutdownGuard's flag — the handler itself stays async-signal-safe)
 * forwards SIGTERM to every live worker, waits for each to drain to
 * its checkpoint, and reports the run as drained (exit 75 at the
 * CLI).  An island that exhausts its respawn budget is left dead;
 * the run still completes and the degradation is reported.
 */

#ifndef GIPPR_ISLAND_SERVICE_HH_
#define GIPPR_ISLAND_SERVICE_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace gippr::island
{

/** Coordinator knobs. */
struct ServiceParams
{
    /** Shared coordination directory (must exist). */
    std::string workdir;
    /** Worker (= island) count. */
    uint32_t islands = 4;
    /**
     * Command line to exec one worker — typically this binary's own
     * argv; the service appends "--worker-id <i> --incarnation <k>".
     * workerCommand[0] must be an absolute executable path.
     */
    std::vector<std::string> workerCommand;
    /** Lease silence (ms of coordinator time) before a live process
        is presumed hung and reclaimed. */
    unsigned staleMs = 15000;
    /** Supervision loop period (ms). */
    unsigned pollMs = 50;
    /** Respawn budget per island; beyond it the island stays dead. */
    uint64_t maxRespawns = 16;
};

/** Supervision record for one island. */
struct IslandStatus
{
    /** Times a replacement worker was spawned. */
    uint64_t respawns = 0;
    /** Incarnation of the most recent worker. */
    uint64_t incarnation = 0;
    /** Worker exited 0 (final artifact written). */
    bool completed = false;
    /** Crashed and not reclaimed (budget exhausted or claim lost). */
    bool dead = false;
    /** Worker drained to a checkpoint during shutdown. */
    bool drainedWorker = false;
};

/** What a service run observed. */
struct ServiceOutcome
{
    std::vector<IslandStatus> islands;
    /** Worker deaths that were successfully reclaimed. */
    uint64_t recoveredCrashes = 0;
    /** True when the run was drained by SIGINT/SIGTERM. */
    bool drained = false;

    /** Every island completed (no deaths left unreclaimed). */
    bool allCompleted() const;
};

/**
 * Spawn and supervise the workers until every island has completed,
 * died permanently, or drained.  Never throws on worker failure —
 * that is the degradation being reported — but fatal()s on
 * coordinator-side I/O errors (fork failure, unwritable workdir).
 */
ServiceOutcome runIslandService(const ServiceParams &params);

} // namespace gippr::island

#endif // GIPPR_ISLAND_SERVICE_HH_
