/**
 * @file
 * Workload / simpoint implementation.
 */

#include "trace/simpoint.hh"

#include "util/check.hh"
#include "util/stats.hh"

namespace gippr
{

void
Workload::addSimpoint(std::shared_ptr<const Trace> trace, double weight)
{
    GIPPR_CHECK(trace);
    GIPPR_CHECK(weight > 0.0);
    simpoints_.push_back({std::move(trace), weight});
}

double
Workload::totalWeight() const
{
    double s = 0.0;
    for (const auto &sp : simpoints_)
        s += sp.weight;
    return s;
}

double
Workload::combine(const std::vector<double> &per_simpoint) const
{
    GIPPR_CHECK(per_simpoint.size() == simpoints_.size());
    std::vector<double> weights;
    weights.reserve(simpoints_.size());
    for (const auto &sp : simpoints_)
        weights.push_back(sp.weight);
    return weightedMean(per_simpoint, weights);
}

} // namespace gippr
