/**
 * @file
 * In-memory memory-reference trace.
 */

#ifndef GIPPR_TRACE_TRACE_HH_
#define GIPPR_TRACE_TRACE_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace gippr
{

/**
 * A sequence of memory references plus bookkeeping totals.
 *
 * Traces are the interchange format between workload generators, the
 * hierarchy filter (which turns a CPU-level trace into an LLC-level
 * trace), the GA fitness function and the performance simulator.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::vector<MemRecord> records);

    /** Append one record, maintaining totals. */
    void append(const MemRecord &rec);

    /** Pre-allocate capacity. */
    void reserve(size_t n) { records_.reserve(n); }

    const std::vector<MemRecord> &records() const { return records_; }
    size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const MemRecord &operator[](size_t i) const { return records_[i]; }

    /** Total instructions covered by the trace. */
    uint64_t instructions() const { return instructions_; }

    /** Number of store records. */
    uint64_t writes() const { return writes_; }

    /** Count of distinct 64-byte blocks touched (computed on demand). */
    size_t footprintBlocks(unsigned block_bytes = 64) const;

    /** Records per kilo-instruction. */
    double accessesPerKiloInst() const;

    std::vector<MemRecord>::const_iterator
    begin() const
    {
        return records_.begin();
    }

    std::vector<MemRecord>::const_iterator
    end() const
    {
        return records_.end();
    }

  private:
    std::vector<MemRecord> records_;
    uint64_t instructions_ = 0;
    uint64_t writes_ = 0;
};

} // namespace gippr

#endif // GIPPR_TRACE_TRACE_HH_
