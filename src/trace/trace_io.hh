/**
 * @file
 * Binary trace file format.
 *
 * Layout (little-endian):
 *   magic   "GPTR"            4 bytes
 *   version u32               currently 2 (v1 still readable)
 *   count   u64               number of records
 *   records: per record
 *     instGap u32, addr u64, pc u64, flags u8 (bit0 = write)
 *   crc     u32               v2 only: CRC-32 of all prior bytes
 *
 * The format exists so that expensive synthetic traces (or externally
 * collected ones) can be cached on disk between experiment runs.
 * Writes are atomic (temp + fsync + rename, robust/atomic_io.hh) and
 * checksummed; reads verify size and checksum, and opens retry with
 * bounded jittered backoff on transient failures.
 */

#ifndef GIPPR_TRACE_TRACE_IO_HH_
#define GIPPR_TRACE_TRACE_IO_HH_

#include <string>

#include "trace/trace.hh"

namespace gippr
{

/**
 * Serialize @p trace to @p path atomically (the destination is never
 * torn); throws std::runtime_error on error.
 */
void writeTrace(const Trace &trace, const std::string &path);

/**
 * Load a trace from @p path; throws std::runtime_error on error.
 *
 * The header's record count is validated against the actual file size
 * before anything is read: truncated files, counts that overflow the
 * file, and trailing garbage are all rejected with messages naming
 * the path — a short read never yields a silently partial trace.
 */
Trace readTrace(const std::string &path);

} // namespace gippr

#endif // GIPPR_TRACE_TRACE_IO_HH_
