/**
 * @file
 * Binary trace file format.
 *
 * Layout (little-endian):
 *   magic   "GPTR"            4 bytes
 *   version u32               currently 2 (v1 still readable)
 *   count   u64               number of records
 *   records: per record
 *     instGap u32, addr u64, pc u64, flags u8 (bit0 = write)
 *   crc     u32               v2 only: CRC-32 of all prior bytes
 *
 * The format exists so that expensive synthetic traces (or externally
 * collected ones) can be cached on disk between experiment runs.
 * Writes are atomic (temp + fsync + rename, robust/atomic_io.hh) and
 * checksummed; reads verify size and checksum, and opens retry with
 * bounded jittered backoff on transient failures.
 *
 * Two readers share the format: readTrace() buffers everything into
 * an in-memory Trace, and MappedTrace maps the file read-only and
 * decodes records straight out of the page cache — zero heap copies,
 * with the CRC footer verified once at open.  TraceSource is the
 * cheap non-owning view over either that the replay engines consume.
 */

#ifndef GIPPR_TRACE_TRACE_IO_HH_
#define GIPPR_TRACE_TRACE_IO_HH_

#include <cstring>
#include <string>

#include "trace/trace.hh"

namespace gippr
{

/** On-disk bytes of one MemRecord: instGap, addr, pc, flags. */
constexpr size_t kGptrRecordBytes =
    sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint64_t) +
    sizeof(uint8_t);

/** Decode one packed on-disk record at @p p (unaligned, LE host). */
inline MemRecord
decodeGptrRecord(const unsigned char *p)
{
    MemRecord r;
    std::memcpy(&r.instGap, p, sizeof(uint32_t));
    std::memcpy(&r.addr, p + 4, sizeof(uint64_t));
    std::memcpy(&r.pc, p + 12, sizeof(uint64_t));
    r.isWrite = p[20] != 0;
    return r;
}

/**
 * A GPTR trace mapped read-only from disk.
 *
 * The whole file is validated at construction exactly like
 * readTrace() — magic, version (v1 and v2), record count vs file
 * size, and the v2 CRC-32 footer — but records are never copied to
 * the heap: operator[] decodes the packed 21-byte record straight
 * out of the mapping, so replaying N genomes streams the bytes from
 * the page cache instead of a duplicated std::vector.
 *
 * On platforms without mmap, or when GIPPR_TRACE_MMAP=0, the
 * constructor transparently falls back to the buffered loader; the
 * observable behaviour (including every rejection path) is
 * identical.  Throws std::runtime_error on any validation failure.
 */
class MappedTrace
{
  public:
    explicit MappedTrace(const std::string &path);
    ~MappedTrace();

    MappedTrace(MappedTrace &&other) noexcept;
    MappedTrace &operator=(MappedTrace &&other) noexcept;
    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    MemRecord
    operator[](size_t i) const
    {
        if (records_)
            return decodeGptrRecord(records_ + i * kGptrRecordBytes);
        return fallback_[i];
    }

    /** True when backed by a live mapping (false = buffered load). */
    bool mapped() const { return records_ != nullptr; }

    /** Packed record bytes inside the mapping; null when buffered. */
    const unsigned char *rawRecords() const { return records_; }

    /** The buffered trace when !mapped(); empty otherwise. */
    const Trace &fallbackTrace() const { return fallback_; }

  private:
    void unmap() noexcept;

    const unsigned char *records_ = nullptr;
    size_t count_ = 0;
    void *map_ = nullptr;
    size_t mapLen_ = 0;
    Trace fallback_;
};

/**
 * Non-owning view over any replayable record sequence — an in-memory
 * Trace or a MappedTrace.  Converts implicitly from either so engine
 * signatures accept both without touching call sites; operator[]
 * costs one predictable branch plus (for mapped sources) the packed
 * decode, both noise next to the per-record simulation work.
 */
class TraceSource
{
  public:
    /*implicit*/ TraceSource(const Trace &t)
        : mem_(t.records().data()), count_(t.size())
    {
    }

    /*implicit*/ TraceSource(const MappedTrace &t) : count_(t.size())
    {
        if (t.mapped())
            raw_ = t.rawRecords();
        else
            mem_ = t.fallbackTrace().records().data();
    }

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    MemRecord
    operator[](size_t i) const
    {
        if (mem_)
            return mem_[i];
        return decodeGptrRecord(raw_ + i * kGptrRecordBytes);
    }

  private:
    const MemRecord *mem_ = nullptr;
    const unsigned char *raw_ = nullptr;
    size_t count_ = 0;
};

/**
 * Serialize @p trace to @p path atomically (the destination is never
 * torn); throws std::runtime_error on error.
 */
void writeTrace(const Trace &trace, const std::string &path);

/**
 * Load a trace from @p path; throws std::runtime_error on error.
 *
 * The header's record count is validated against the actual file size
 * before anything is read: truncated files, counts that overflow the
 * file, and trailing garbage are all rejected with messages naming
 * the path — a short read never yields a silently partial trace.
 */
Trace readTrace(const std::string &path);

} // namespace gippr

#endif // GIPPR_TRACE_TRACE_IO_HH_
