/**
 * @file
 * Simpoint-weighted workloads.
 *
 * The paper evaluates each SPEC benchmark as up to six SimPoint
 * segments, combining per-simpoint statistics with SimPoint weights
 * that represent the fraction of execution each segment stands for.
 * We reproduce the same structure: a Workload is a named list of
 * (trace, weight) pairs, and per-benchmark statistics are weighted
 * means over simpoints.
 */

#ifndef GIPPR_TRACE_SIMPOINT_HH_
#define GIPPR_TRACE_SIMPOINT_HH_

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace gippr
{

/** One simpoint: a trace segment plus its SimPoint weight. */
struct Simpoint
{
    std::shared_ptr<const Trace> trace;
    double weight = 1.0;
};

/** A named benchmark: one or more weighted simpoints. */
class Workload
{
  public:
    Workload() = default;
    explicit Workload(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Add one simpoint.  @pre weight > 0 */
    void addSimpoint(std::shared_ptr<const Trace> trace, double weight);

    const std::vector<Simpoint> &simpoints() const { return simpoints_; }
    size_t size() const { return simpoints_.size(); }
    bool empty() const { return simpoints_.empty(); }

    /** Sum of simpoint weights. */
    double totalWeight() const;

    /**
     * Combine per-simpoint statistics into a per-benchmark figure via
     * the SimPoint-weighted mean.
     * @pre per_simpoint.size() == size()
     */
    double combine(const std::vector<double> &per_simpoint) const;

  private:
    std::string name_;
    std::vector<Simpoint> simpoints_;
};

} // namespace gippr

#endif // GIPPR_TRACE_SIMPOINT_HH_
