/**
 * @file
 * Stack-distance profiling implementation.
 *
 * Mattson's algorithm with an order-statistic treap keyed by "time of
 * last access": each resident block is a treap node; the stack
 * distance of an access is the number of nodes with a *more recent*
 * last-access time than the accessed block, which the treap answers
 * in O(log n) via subtree sizes.
 */

#include "trace/analysis.hh"

#include <memory>
#include <unordered_map>

#include "util/bitops.hh"
#include "util/check.hh"
#include "util/rng.hh"

namespace gippr
{

namespace
{

/** Treap node: key = last-access time (unique, increasing). */
struct Node
{
    uint64_t time;
    uint32_t priority;
    uint32_t size = 1;
    Node *left = nullptr;
    Node *right = nullptr;
};

uint32_t
sizeOf(const Node *n)
{
    return n ? n->size : 0;
}

void
pull(Node *n)
{
    n->size = 1 + sizeOf(n->left) + sizeOf(n->right);
}

/** Split by time: left subtree holds times < t, right holds >= t. */
void
split(Node *n, uint64_t t, Node *&left, Node *&right)
{
    if (!n) {
        left = right = nullptr;
        return;
    }
    if (n->time < t) {
        split(n->right, t, n->right, right);
        left = n;
        pull(left);
    } else {
        split(n->left, t, left, n->left);
        right = n;
        pull(right);
    }
}

Node *
merge(Node *a, Node *b)
{
    if (!a)
        return b;
    if (!b)
        return a;
    if (a->priority > b->priority) {
        a->right = merge(a->right, b);
        pull(a);
        return a;
    }
    b->left = merge(a, b->left);
    pull(b);
    return b;
}

} // namespace

struct StackDistanceProfiler::Impl
{
    Node *root = nullptr;
    /** block -> (its node, its last-access time). */
    std::unordered_map<uint64_t, Node *> nodes;
    uint64_t clock = 0;
    Rng rng{0x57ac4d15ULL}; // treap priorities only

    ~Impl() { destroy(root); }

    static void
    destroy(Node *n)
    {
        if (!n)
            return;
        destroy(n->left);
        destroy(n->right);
        delete n;
    }

    /** Count nodes with time > t (blocks touched more recently). */
    uint32_t
    countNewer(uint64_t t) const
    {
        uint32_t count = 0;
        const Node *n = root;
        while (n) {
            if (n->time > t) {
                count += 1 + sizeOf(n->right);
                n = n->left;
            } else {
                n = n->right;
            }
        }
        return count;
    }

    /** Remove the node with exactly time t. */
    void
    erase(uint64_t t)
    {
        Node *left, *mid, *right;
        split(root, t, left, mid);
        split(mid, t + 1, mid, right);
        GIPPR_CHECK(mid && !mid->left && !mid->right);
        delete mid;
        root = merge(left, right);
    }

    /** Insert a new node with the current (max) time. */
    Node *
    insertNewest(uint64_t t)
    {
        Node *n = new Node{t, static_cast<uint32_t>(rng.next()), 1,
                           nullptr, nullptr};
        // t exceeds every key in the treap; merge on the right.
        root = merge(root, n);
        return n;
    }
};

StackDistanceProfiler::StackDistanceProfiler()
    : impl_(new Impl)
{
}

StackDistanceProfiler::~StackDistanceProfiler()
{
    delete impl_;
}

uint64_t
StackDistanceProfiler::access(uint64_t block)
{
    Impl &im = *impl_;
    const uint64_t now = im.clock++;
    auto it = im.nodes.find(block);
    uint64_t distance;
    if (it == im.nodes.end()) {
        distance = kCold;
    } else {
        uint64_t last = it->second->time;
        distance = im.countNewer(last);
        im.erase(last);
    }
    Node *n = im.insertNewest(now);
    im.nodes[block] = n;
    return distance;
}

size_t
StackDistanceProfiler::distinctBlocks() const
{
    return impl_->nodes.size();
}

double
TraceProfile::lruHitRate(uint64_t capacity_blocks) const
{
    if (accesses == 0)
        return 0.0;
    uint64_t hits =
        capacity_blocks == 0
            ? 0
            : stackDistance.cumulative(
                  static_cast<size_t>(capacity_blocks) - 1);
    return static_cast<double>(hits) / static_cast<double>(accesses);
}

TraceProfile
profileTrace(const Trace &trace, unsigned block_bytes,
             uint64_t max_distance)
{
    TraceProfile profile{Histogram(static_cast<size_t>(max_distance)),
                         0, 0, 0};
    StackDistanceProfiler profiler;
    const unsigned shift = floorLog2(block_bytes);
    for (const auto &r : trace.records()) {
        uint64_t d = profiler.access(r.addr >> shift);
        ++profile.accesses;
        if (d == StackDistanceProfiler::kCold)
            ++profile.coldAccesses;
        else
            profile.stackDistance.add(d);
    }
    profile.footprint = profiler.distinctBlocks();
    return profile;
}

std::vector<double>
missRateCurve(const TraceProfile &profile,
              const std::vector<uint64_t> &capacities)
{
    std::vector<double> out;
    out.reserve(capacities.size());
    for (uint64_t c : capacities)
        out.push_back(1.0 - profile.lruHitRate(c));
    return out;
}

} // namespace gippr
