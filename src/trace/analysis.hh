/**
 * @file
 * Trace characterization: stack-distance and reuse-distance profiles.
 *
 * The paper reasons about workloads through their reuse structure
 * (zero-reuse blocks, thrash loops, scan pollution).  This module
 * computes those structures from a trace so workloads can be
 * characterized quantitatively: an exact LRU stack-distance profile
 * (via an order-statistic tree, O(log n) per access), a plain
 * reuse-distance profile, and derived summaries such as the working
 * set size and the hit-rate-vs-capacity curve that a fully
 * associative LRU cache would achieve (Mattson et al.'s one-pass
 * construction).
 */

#ifndef GIPPR_TRACE_ANALYSIS_HH_
#define GIPPR_TRACE_ANALYSIS_HH_

#include <cstdint>
#include <vector>

#include "trace/trace.hh"
#include "util/histogram.hh"

namespace gippr
{

/**
 * Exact LRU stack-distance computation (Mattson's algorithm) over
 * block addresses, using an order-statistic treap so each access
 * costs O(log n).
 *
 * The stack distance of an access is the number of *distinct* blocks
 * referenced since the previous access to the same block; cold
 * accesses report kCold.  A fully associative LRU cache of capacity C
 * hits exactly the accesses with stack distance < C, which is how
 * profiles translate into hit-rate curves.
 */
class StackDistanceProfiler
{
  public:
    StackDistanceProfiler();
    ~StackDistanceProfiler();

    StackDistanceProfiler(const StackDistanceProfiler &) = delete;
    StackDistanceProfiler &
    operator=(const StackDistanceProfiler &) = delete;

    /** Sentinel for first-touch (compulsory) accesses. */
    static constexpr uint64_t kCold = ~uint64_t{0};

    /**
     * Record an access to @p block and return its stack distance
     * (kCold on first touch).
     */
    uint64_t access(uint64_t block);

    /** Number of distinct blocks seen so far. */
    size_t distinctBlocks() const;

  private:
    struct Impl;
    Impl *impl_;
};

/** Profile of one trace. */
struct TraceProfile
{
    /** Stack-distance histogram (block granular, bounded + overflow). */
    Histogram stackDistance;
    /** Compulsory (first-touch) accesses. */
    uint64_t coldAccesses = 0;
    /** Total accesses profiled. */
    uint64_t accesses = 0;
    /** Distinct blocks (working footprint). */
    uint64_t footprint = 0;

    /**
     * Hit rate of a fully associative LRU cache of @p capacity_blocks
     * implied by the profile (distances >= bound count as misses).
     */
    double lruHitRate(uint64_t capacity_blocks) const;
};

/**
 * Profile @p trace at @p block_bytes granularity; distances above
 * @p max_distance land in the overflow bucket.
 */
TraceProfile profileTrace(const Trace &trace, unsigned block_bytes = 64,
                          uint64_t max_distance = 1 << 20);

/**
 * Miss-rate curve: fully associative LRU miss rates at the given
 * capacities (in blocks), from a single profiling pass.
 */
std::vector<double> missRateCurve(const TraceProfile &profile,
                                  const std::vector<uint64_t> &capacities);

} // namespace gippr

#endif // GIPPR_TRACE_ANALYSIS_HH_
