/**
 * @file
 * The unit of a memory trace.
 *
 * Mirrors what the paper collects with its modified Valgrind: one entry
 * per memory reference, carrying the instruction-count gap since the
 * previous reference (so the performance model can reconstruct CPI and
 * window occupancy), the byte address, the access kind, and the address
 * of the memory instruction (the "PC"), which signature-based policies
 * such as SHiP consume.
 */

#ifndef GIPPR_TRACE_RECORD_HH_
#define GIPPR_TRACE_RECORD_HH_

#include <cstdint>

namespace gippr
{

/** One memory reference in a trace. */
struct MemRecord
{
    /** Instructions retired since the previous record (>= 1). */
    uint32_t instGap = 1;
    /** Byte address referenced. */
    uint64_t addr = 0;
    /** Address of the referencing instruction (for PC-based policies). */
    uint64_t pc = 0;
    /** True for stores. */
    bool isWrite = false;

    bool
    operator==(const MemRecord &o) const
    {
        return instGap == o.instGap && addr == o.addr && pc == o.pc &&
               isWrite == o.isWrite;
    }
};

} // namespace gippr

#endif // GIPPR_TRACE_RECORD_HH_
