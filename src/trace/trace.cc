/**
 * @file
 * Trace implementation.
 */

#include "trace/trace.hh"

#include <unordered_set>

#include "util/bitops.hh"

namespace gippr
{

Trace::Trace(std::vector<MemRecord> records)
{
    records_.reserve(records.size());
    for (const auto &r : records)
        append(r);
}

void
Trace::append(const MemRecord &rec)
{
    records_.push_back(rec);
    instructions_ += rec.instGap;
    if (rec.isWrite)
        ++writes_;
}

size_t
Trace::footprintBlocks(unsigned block_bytes) const
{
    const unsigned shift = floorLog2(block_bytes);
    std::unordered_set<uint64_t> blocks;
    blocks.reserve(records_.size() / 4 + 16);
    for (const auto &r : records_)
        blocks.insert(r.addr >> shift);
    return blocks.size();
}

double
Trace::accessesPerKiloInst() const
{
    if (instructions_ == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(records_.size()) /
           static_cast<double>(instructions_);
}

} // namespace gippr
