/**
 * @file
 * Binary trace file reader/writer.
 */

#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/log.hh"

namespace gippr
{

namespace
{

constexpr char kMagic[4] = {'G', 'P', 'T', 'R'};
constexpr uint32_t kVersion = 1;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void
writeScalar(std::FILE *f, T v)
{
    if (std::fwrite(&v, sizeof(T), 1, f) != 1)
        fatal("trace write failed");
}

template <typename T>
T
readScalar(std::FILE *f)
{
    T v;
    if (std::fread(&v, sizeof(T), 1, f) != 1)
        fatal("trace read failed: truncated file");
    return v;
}

} // namespace

void
writeTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot open trace file for writing: " + path);
    if (std::fwrite(kMagic, 1, 4, f.get()) != 4)
        fatal("trace write failed");
    writeScalar<uint32_t>(f.get(), kVersion);
    writeScalar<uint64_t>(f.get(), trace.size());
    for (const auto &r : trace.records()) {
        writeScalar<uint32_t>(f.get(), r.instGap);
        writeScalar<uint64_t>(f.get(), r.addr);
        writeScalar<uint64_t>(f.get(), r.pc);
        writeScalar<uint8_t>(f.get(), r.isWrite ? 1 : 0);
    }
}

Trace
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open trace file for reading: " + path);
    char magic[4];
    if (std::fread(magic, 1, 4, f.get()) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0) {
        fatal("not a GPTR trace file: " + path);
    }
    uint32_t version = readScalar<uint32_t>(f.get());
    if (version != kVersion)
        fatal("unsupported trace version in " + path);
    uint64_t count = readScalar<uint64_t>(f.get());
    Trace trace;
    trace.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        MemRecord r;
        r.instGap = readScalar<uint32_t>(f.get());
        r.addr = readScalar<uint64_t>(f.get());
        r.pc = readScalar<uint64_t>(f.get());
        r.isWrite = readScalar<uint8_t>(f.get()) != 0;
        trace.append(r);
    }
    return trace;
}

} // namespace gippr
