/**
 * @file
 * Binary trace file reader/writer.
 */

#include "trace/trace_io.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "robust/atomic_io.hh"
#include "robust/fault_inject.hh"
#include "util/log.hh"

#if defined(__unix__) || defined(__APPLE__)
#define GIPPR_TRACE_HAVE_MMAP 1
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GIPPR_TRACE_HAVE_MMAP 0
#endif

namespace gippr
{

namespace
{

constexpr char kMagic[4] = {'G', 'P', 'T', 'R'};
/** Current write version: v2 appends a CRC-32 footer. */
constexpr uint32_t kVersion = 2;
/** Still readable: the pre-checksum format. */
constexpr uint32_t kVersionNoCrc = 1;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/** Errno values worth retrying a failed open for. */
bool
transientOpenError(int err)
{
    return err == EINTR || err == EAGAIN || err == EMFILE ||
           err == ENFILE || err == EIO;
}

/**
 * fopen with bounded, jittered retry on transient failures (fault-
 * injector aware, so tests can script the Nth open failing).
 * Permanent errors (ENOENT, EACCES, ...) return immediately.
 */
FilePtr
openWithRetry(const std::string &path, const char *mode)
{
    std::FILE *f = nullptr;
    const robust::RetryPolicy policy = robust::defaultRetryPolicy();
    robust::retryWithBackoff(policy, [&]() {
        if (robust::FaultInjector::instance().check(
                robust::FaultOp::Open) != robust::FaultKind::None) {
            errno = EIO;
            return false; // injected failures count as transient
        }
        f = std::fopen(path.c_str(), mode);
        return f != nullptr || !transientOpenError(errno);
    });
    return FilePtr(f);
}

template <typename T>
void
appendScalar(std::string &buf, T v)
{
    buf.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

/**
 * fread with read-side fault injection: an armed read=N fault makes
 * the Nth call report a short read, so the trace loaders' truncation
 * and I/O-error paths get the same scripted coverage as the writers.
 */
size_t
fiFread(void *out, size_t size, size_t count, std::FILE *f)
{
    if (robust::FaultInjector::instance().check(
            robust::FaultOp::Read) != robust::FaultKind::None) {
        errno = EIO;
        return 0;
    }
    return std::fread(out, size, count, f);
}

/**
 * fread @p count bytes into @p out, folding them into @p crc.  The
 * running checksum lets the reader verify the v2 footer without
 * buffering the whole file.
 */
template <typename T>
T
readScalar(std::FILE *f, uint32_t &crc, const std::string &path,
           const std::string &what)
{
    T v;
    if (fiFread(&v, sizeof(T), 1, f) != 1)
        fatal("trace file truncated reading " + what + ": " + path);
    crc = robust::crc32(&v, sizeof(T), crc);
    return v;
}

/** On-disk bytes of one MemRecord (fields are written unpadded). */
constexpr uint64_t kRecordBytes = kGptrRecordBytes;

/** Header bytes: magic + version + record count. */
constexpr uint64_t kHeaderBytes =
    4 + sizeof(uint32_t) + sizeof(uint64_t);

/** Size of @p f in bytes (position is restored). */
uint64_t
fileSize(std::FILE *f, const std::string &path)
{
    long pos = std::ftell(f);
    if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0)
        fatal("cannot determine size of trace file: " + path);
    long end = std::ftell(f);
    if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0)
        fatal("cannot determine size of trace file: " + path);
    return static_cast<uint64_t>(end);
}

/** mmap streaming enabled?  GIPPR_TRACE_MMAP=0 forces buffered. */
bool
mmapEnabled()
{
    const char *env = std::getenv("GIPPR_TRACE_MMAP");
    return !env || std::strcmp(env, "0") != 0;
}

} // namespace

void
writeTrace(const Trace &trace, const std::string &path)
{
    // Serialize into memory, checksum, then atomically replace the
    // destination: a crash or ENOSPC mid-write leaves either the old
    // file or the complete new one, never a torn trace.
    std::string buf;
    buf.reserve(kHeaderBytes + trace.size() * kRecordBytes + 4);
    buf.append(kMagic, 4);
    appendScalar<uint32_t>(buf, kVersion);
    appendScalar<uint64_t>(buf, trace.size());
    for (const auto &r : trace.records()) {
        appendScalar<uint32_t>(buf, r.instGap);
        appendScalar<uint64_t>(buf, r.addr);
        appendScalar<uint64_t>(buf, r.pc);
        appendScalar<uint8_t>(buf, r.isWrite ? 1 : 0);
    }
    appendScalar<uint32_t>(
        buf, robust::crc32(buf.data(), buf.size()));
    robust::writeFileAtomic(path, buf);
}

Trace
readTrace(const std::string &path)
{
    FilePtr f = openWithRetry(path, "rb");
    if (!f)
        fatal("cannot open trace file for reading: " + path);
    uint32_t crc = 0;
    char magic[4];
    if (fiFread(magic, 1, 4, f.get()) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0) {
        fatal("not a GPTR trace file: " + path);
    }
    crc = robust::crc32(magic, 4, crc);
    uint32_t version =
        readScalar<uint32_t>(f.get(), crc, path, "version");
    if (version != kVersion && version != kVersionNoCrc)
        fatal("unsupported trace version in " + path);
    uint64_t count =
        readScalar<uint64_t>(f.get(), crc, path, "record count");
    const uint64_t footer = version == kVersion ? 4 : 0;

    // Validate the promised record count against the actual file size
    // before reserving or reading anything: a corrupt header must not
    // drive a multi-gigabyte allocation or a silently partial trace.
    if (count >
        (UINT64_MAX - kHeaderBytes - footer) / kRecordBytes)
        fatal("trace file header corrupt: record count " +
              std::to_string(count) + " overflows the file size: " +
              path);
    uint64_t expected = kHeaderBytes + count * kRecordBytes + footer;
    uint64_t actual = fileSize(f.get(), path);
    if (actual < expected)
        fatal("trace file truncated: header promises " +
              std::to_string(count) + " records (" +
              std::to_string(expected) + " bytes) but " + path +
              " is only " + std::to_string(actual) + " bytes");
    if (actual > expected)
        fatal("trace file corrupt: " + std::to_string(actual - expected) +
              " trailing bytes after " + std::to_string(count) +
              " records: " + path);

    Trace trace;
    trace.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        MemRecord r;
        // Size was validated above, so a short read here is an I/O
        // error, not routine truncation.
        r.instGap =
            readScalar<uint32_t>(f.get(), crc, path, "record");
        r.addr = readScalar<uint64_t>(f.get(), crc, path, "record");
        r.pc = readScalar<uint64_t>(f.get(), crc, path, "record");
        r.isWrite =
            readScalar<uint8_t>(f.get(), crc, path, "record") != 0;
        trace.append(r);
    }
    if (version == kVersion) {
        uint32_t body_crc = crc;
        uint32_t stored = 0;
        if (fiFread(&stored, sizeof(stored), 1, f.get()) != 1)
            fatal("trace file truncated reading checksum: " + path);
        if (stored != body_crc)
            fatal("trace file checksum mismatch (corrupt contents): " +
                  path);
    }
    return trace;
}

MappedTrace::MappedTrace(const std::string &path)
{
#if GIPPR_TRACE_HAVE_MMAP
    if (mmapEnabled()) {
        FilePtr f = openWithRetry(path, "rb");
        if (!f)
            fatal("cannot open trace file for reading: " + path);
        struct stat st;
        if (fstat(fileno(f.get()), &st) != 0)
            fatal("cannot determine size of trace file: " + path);
        const uint64_t len = static_cast<uint64_t>(st.st_size);
        if (len >= kHeaderBytes) {
            // An armed mmap=N fault models MAP_FAILED (exotic
            // filesystem): the reader must degrade to the buffered
            // loader with identical results.
            const bool injected =
                robust::FaultInjector::instance().check(
                    robust::FaultOp::Mmap) != robust::FaultKind::None;
            void *map =
                injected ? MAP_FAILED
                         : mmap(nullptr, static_cast<size_t>(len),
                                PROT_READ, MAP_PRIVATE,
                                fileno(f.get()), 0);
            if (map != MAP_FAILED) {
                // The mapping must be released if validation throws
                // (a throwing constructor never runs the destructor).
                const auto *data =
                    static_cast<const unsigned char *>(map);
                const auto fail = [&](const std::string &msg) {
                    munmap(map, static_cast<size_t>(len));
                    fatal(msg);
                };

                // Validate exactly like the buffered reader: magic,
                // version, promised count vs actual size, CRC footer.
                if (std::memcmp(data, kMagic, 4) != 0)
                    fail("not a GPTR trace file: " + path);
                uint32_t version;
                std::memcpy(&version, data + 4, sizeof(version));
                if (version != kVersion && version != kVersionNoCrc)
                    fail("unsupported trace version in " + path);
                uint64_t count;
                std::memcpy(&count, data + 8, sizeof(count));
                const uint64_t footer = version == kVersion ? 4 : 0;
                if (count > (UINT64_MAX - kHeaderBytes - footer) /
                                kRecordBytes)
                    fail("trace file header corrupt: record count " +
                         std::to_string(count) +
                         " overflows the file size: " + path);
                const uint64_t expected =
                    kHeaderBytes + count * kRecordBytes + footer;
                if (len < expected)
                    fail("trace file truncated: header promises " +
                         std::to_string(count) + " records (" +
                         std::to_string(expected) + " bytes) but " +
                         path + " is only " + std::to_string(len) +
                         " bytes");
                if (len > expected)
                    fail("trace file corrupt: " +
                         std::to_string(len - expected) +
                         " trailing bytes after " +
                         std::to_string(count) + " records: " + path);
                if (version == kVersion) {
                    uint32_t stored;
                    std::memcpy(&stored, data + len - 4,
                                sizeof(stored));
                    if (robust::crc32(data, len - 4) != stored)
                        fail("trace file checksum mismatch (corrupt "
                             "contents): " +
                             path);
                }
#ifdef POSIX_MADV_SEQUENTIAL
                // Replay streams the records front to back (several
                // times for multi-genome batches): tell the kernel.
                posix_madvise(map, static_cast<size_t>(len),
                              POSIX_MADV_SEQUENTIAL);
#endif
                map_ = map;
                mapLen_ = static_cast<size_t>(len);
                records_ = data + kHeaderBytes;
                count_ = static_cast<size_t>(count);
                return;
            }
        }
        // Too small to even map a header, or mmap itself failed
        // (exotic filesystem): the buffered loader below reproduces
        // the exact legacy behaviour, including rejection messages.
    }
#endif
    fallback_ = readTrace(path);
    count_ = fallback_.size();
}

MappedTrace::~MappedTrace()
{
    unmap();
}

void
MappedTrace::unmap() noexcept
{
#if GIPPR_TRACE_HAVE_MMAP
    if (map_)
        munmap(map_, mapLen_);
#endif
    map_ = nullptr;
    mapLen_ = 0;
    records_ = nullptr;
    count_ = 0;
}

MappedTrace::MappedTrace(MappedTrace &&other) noexcept
    : records_(other.records_), count_(other.count_),
      map_(other.map_), mapLen_(other.mapLen_),
      fallback_(std::move(other.fallback_))
{
    other.records_ = nullptr;
    other.count_ = 0;
    other.map_ = nullptr;
    other.mapLen_ = 0;
}

MappedTrace &
MappedTrace::operator=(MappedTrace &&other) noexcept
{
    if (this != &other) {
        unmap();
        records_ = other.records_;
        count_ = other.count_;
        map_ = other.map_;
        mapLen_ = other.mapLen_;
        fallback_ = std::move(other.fallback_);
        other.records_ = nullptr;
        other.count_ = 0;
        other.map_ = nullptr;
        other.mapLen_ = 0;
    }
    return *this;
}

} // namespace gippr
