/**
 * @file
 * Binary trace file reader/writer.
 */

#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/log.hh"

namespace gippr
{

namespace
{

constexpr char kMagic[4] = {'G', 'P', 'T', 'R'};
constexpr uint32_t kVersion = 1;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void
writeScalar(std::FILE *f, T v)
{
    if (std::fwrite(&v, sizeof(T), 1, f) != 1)
        fatal("trace write failed");
}

template <typename T>
T
readScalar(std::FILE *f, const std::string &path,
           const std::string &what)
{
    T v;
    if (std::fread(&v, sizeof(T), 1, f) != 1)
        fatal("trace file truncated reading " + what + ": " + path);
    return v;
}

/** On-disk bytes of one MemRecord (fields are written unpadded). */
constexpr uint64_t kRecordBytes =
    sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint64_t) +
    sizeof(uint8_t);

/** Header bytes: magic + version + record count. */
constexpr uint64_t kHeaderBytes =
    4 + sizeof(uint32_t) + sizeof(uint64_t);

/** Size of @p f in bytes (position is restored). */
uint64_t
fileSize(std::FILE *f, const std::string &path)
{
    long pos = std::ftell(f);
    if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0)
        fatal("cannot determine size of trace file: " + path);
    long end = std::ftell(f);
    if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0)
        fatal("cannot determine size of trace file: " + path);
    return static_cast<uint64_t>(end);
}

} // namespace

void
writeTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot open trace file for writing: " + path);
    if (std::fwrite(kMagic, 1, 4, f.get()) != 4)
        fatal("trace write failed");
    writeScalar<uint32_t>(f.get(), kVersion);
    writeScalar<uint64_t>(f.get(), trace.size());
    for (const auto &r : trace.records()) {
        writeScalar<uint32_t>(f.get(), r.instGap);
        writeScalar<uint64_t>(f.get(), r.addr);
        writeScalar<uint64_t>(f.get(), r.pc);
        writeScalar<uint8_t>(f.get(), r.isWrite ? 1 : 0);
    }
}

Trace
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open trace file for reading: " + path);
    char magic[4];
    if (std::fread(magic, 1, 4, f.get()) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0) {
        fatal("not a GPTR trace file: " + path);
    }
    uint32_t version = readScalar<uint32_t>(f.get(), path, "version");
    if (version != kVersion)
        fatal("unsupported trace version in " + path);
    uint64_t count =
        readScalar<uint64_t>(f.get(), path, "record count");

    // Validate the promised record count against the actual file size
    // before reserving or reading anything: a corrupt header must not
    // drive a multi-gigabyte allocation or a silently partial trace.
    if (count > (UINT64_MAX - kHeaderBytes) / kRecordBytes)
        fatal("trace file header corrupt: record count " +
              std::to_string(count) + " overflows the file size: " +
              path);
    uint64_t expected = kHeaderBytes + count * kRecordBytes;
    uint64_t actual = fileSize(f.get(), path);
    if (actual < expected)
        fatal("trace file truncated: header promises " +
              std::to_string(count) + " records (" +
              std::to_string(expected) + " bytes) but " + path +
              " is only " + std::to_string(actual) + " bytes");
    if (actual > expected)
        fatal("trace file corrupt: " + std::to_string(actual - expected) +
              " trailing bytes after " + std::to_string(count) +
              " records: " + path);

    Trace trace;
    trace.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        MemRecord r;
        uint8_t is_write = 0;
        // Size was validated above, so a short read here is an I/O
        // error, not routine truncation; keep the check branch-only.
        if (std::fread(&r.instGap, sizeof(r.instGap), 1, f.get()) != 1 ||
            std::fread(&r.addr, sizeof(r.addr), 1, f.get()) != 1 ||
            std::fread(&r.pc, sizeof(r.pc), 1, f.get()) != 1 ||
            std::fread(&is_write, sizeof(is_write), 1, f.get()) != 1) {
            fatal("trace read failed at record " + std::to_string(i) +
                  " of " + std::to_string(count) + ": " + path);
        }
        r.isWrite = is_write != 0;
        trace.append(r);
    }
    return trace;
}

} // namespace gippr
