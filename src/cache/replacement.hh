/**
 * @file
 * The replacement-policy interface.
 *
 * A ReplacementPolicy owns all replacement metadata for one cache and
 * reacts to the cache's events: hits, misses, fills and invalidations.
 * Victim selection only considers valid lines (the cache fills invalid
 * ways itself, in way order, before consulting the policy).
 *
 * The interface deliberately exposes the same information the JILP
 * Cache Replacement Championship framework gave policies: set index,
 * way, block address, requesting PC and access type — nothing more —
 * so every policy here is implementable in real hardware given the
 * same signals.
 *
 * Convention (also from the championship framework): writeback hits
 * do not update replacement recency — a dirty eviction arriving from
 * the level above says nothing about the block's future reuse, and
 * letting it promote blocks destroys insertion-policy properties such
 * as LIP's churn slot.  Writeback fills still initialize metadata via
 * onInsert.
 */

#ifndef GIPPR_CACHE_REPLACEMENT_HH_
#define GIPPR_CACHE_REPLACEMENT_HH_

#include <cstdint>
#include <string>

#include "telemetry/metrics.hh"

namespace gippr
{

/** Kind of access presented to a cache level. */
enum class AccessType : uint8_t
{
    Load,      ///< demand read
    Store,     ///< demand write (write-allocate)
    Writeback, ///< dirty eviction arriving from the level above
};

/** Per-access context handed to policy callbacks. */
struct AccessInfo
{
    /** Set index within this cache. */
    uint64_t set = 0;
    /** Block address (byte address >> blockShift). */
    uint64_t blockAddr = 0;
    /** Program counter of the memory instruction (0 for writebacks). */
    uint64_t pc = 0;
    /** Access kind. */
    AccessType type = AccessType::Load;
    /** Monotonic per-cache access sequence number (for offline MIN). */
    uint64_t sequence = 0;
};

/**
 * Abstract replacement policy.
 *
 * Lifetimes: one policy instance serves one cache instance; it is
 * constructed knowing the geometry (sets and ways) it will manage.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /**
     * Choose the way to evict in a full set.
     * Called only when every way in @p info.set holds a valid line.
     *
     * @return way index in [0, assoc)
     */
    virtual unsigned victim(const AccessInfo &info) = 0;

    /** A miss occurred (called before fill, on every miss). */
    virtual void onMiss(const AccessInfo &info) { (void)info; }

    /**
     * Should this missing demand block bypass the cache entirely?
     * Consulted after onMiss and before any fill; a bypassed access
     * is serviced from below without allocating.  Only demand
     * accesses may bypass (writebacks must land).  Bypass violates
     * inclusion, so inclusive hierarchies must keep this false — the
     * paper evaluates PDP in non-bypass mode for exactly that reason,
     * and its future-work item 1 is a bypass-capable DGIPPR, which
     * BypassGipprPolicy implements.
     */
    virtual bool
    shouldBypass(const AccessInfo &info)
    {
        (void)info;
        return false;
    }

    /** Line filled into @p way (after any eviction). */
    virtual void onInsert(unsigned way, const AccessInfo &info) = 0;

    /** Hit on @p way. */
    virtual void onHit(unsigned way, const AccessInfo &info) = 0;

    /** Line in (set, way) invalidated externally. */
    virtual void
    onInvalidate(uint64_t set, unsigned way)
    {
        (void)set;
        (void)way;
    }

    /** Human-readable policy name (appears in result tables). */
    virtual std::string name() const = 0;

    /**
     * Replacement metadata bits per cache set — the paper's headline
     * cost metric (e.g. 64 for full LRU at 16 ways, 15 for PLRU/GIPPR).
     */
    virtual size_t stateBitsPerSet() const = 0;

    /**
     * Global (per-cache, not per-set) metadata bits, e.g. DGIPPR's
     * three 11-bit dueling counters.
     */
    virtual size_t globalStateBits() const { return 0; }

    /**
     * Register this policy's live instruments under @p prefix (e.g.
     * set-dueling counters).  Policies cache the returned instrument
     * references; the registry must outlive the policy.  Default:
     * nothing to export.
     */
    virtual void
    attachTelemetry(telemetry::MetricRegistry &registry,
                    const std::string &prefix)
    {
        (void)registry;
        (void)prefix;
    }
};

} // namespace gippr

#endif // GIPPR_CACHE_REPLACEMENT_HH_
