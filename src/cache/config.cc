/**
 * @file
 * Cache geometry implementation.
 */

#include "cache/config.hh"

#include "util/bitops.hh"
#include "util/log.hh"

namespace gippr
{

uint64_t
CacheConfig::sets() const
{
    return sizeBytes / (static_cast<uint64_t>(assoc) * blockBytes);
}

unsigned
CacheConfig::blockShift() const
{
    return floorLog2(blockBytes);
}

unsigned
CacheConfig::setShift() const
{
    return floorLog2(sets());
}

uint64_t
CacheConfig::blockAddr(uint64_t byte_addr) const
{
    return byte_addr >> blockShift();
}

uint64_t
CacheConfig::setIndex(uint64_t byte_addr) const
{
    return blockAddr(byte_addr) & (sets() - 1);
}

uint64_t
CacheConfig::tag(uint64_t byte_addr) const
{
    return blockAddr(byte_addr) >> setShift();
}

void
CacheConfig::validate() const
{
    if (blockBytes < 8 || !isPow2(blockBytes))
        fatal(name + ": block size must be a power of two >= 8");
    if (assoc < 1)
        fatal(name + ": associativity must be >= 1");
    if (sizeBytes == 0 ||
        sizeBytes % (static_cast<uint64_t>(assoc) * blockBytes) != 0) {
        fatal(name + ": size must be a multiple of assoc * blockBytes");
    }
    if (!isPow2(sets()))
        fatal(name + ": number of sets must be a power of two");
}

CacheConfig
CacheConfig::paperLlc()
{
    return {"LLC", 4ULL * 1024 * 1024, 16, 64};
}

CacheConfig
CacheConfig::paperL1d()
{
    return {"L1D", 32ULL * 1024, 8, 64};
}

CacheConfig
CacheConfig::paperL2()
{
    return {"L2", 256ULL * 1024, 8, 64};
}

CacheConfig
CacheConfig::benchLlc()
{
    return {"LLC", 1ULL * 1024 * 1024, 16, 64};
}

} // namespace gippr
