/**
 * @file
 * Set-associative cache model with pluggable replacement.
 */

#ifndef GIPPR_CACHE_CACHE_HH_
#define GIPPR_CACHE_CACHE_HH_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "telemetry/metrics.hh"

namespace gippr
{

/** Outcome of one cache access. */
struct AccessResult
{
    bool hit = false;
    /** The policy chose not to allocate this missing block. */
    bool bypassed = false;
    /** Way the block resides in after the access (unless bypassed). */
    unsigned way = 0;
    /** Block address of a line evicted to make room, if any. */
    std::optional<uint64_t> evictedBlock;
    /** True when the evicted line was dirty (writeback needed below). */
    bool evictedDirty = false;
};

/** Hit/miss statistics for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    /** Demand misses serviced without allocating. */
    uint64_t bypasses = 0;
    /** Demand (non-writeback) accesses and misses. */
    uint64_t demandAccesses = 0;
    uint64_t demandMisses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    /** Demand misses per kilo-instruction given a total inst count. */
    double
    mpki(uint64_t instructions) const
    {
        return instructions ? 1000.0 * static_cast<double>(demandMisses) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * One level of set-associative cache.
 *
 * Write-allocate, writeback.  The cache owns its replacement policy.
 * Invalid ways are filled in way order before the policy is asked for
 * a victim, matching typical simulator behaviour.
 */
class SetAssocCache
{
  public:
    /**
     * @param config  validated geometry
     * @param policy  replacement policy sized for this geometry
     */
    SetAssocCache(const CacheConfig &config,
                  std::unique_ptr<ReplacementPolicy> policy);

    /**
     * Perform one access.
     *
     * @param byte_addr  referenced byte address
     * @param type       access kind
     * @param pc         referencing instruction address (0 if unknown)
     */
    AccessResult access(uint64_t byte_addr, AccessType type,
                        uint64_t pc = 0);

    /** True if the block holding @p byte_addr is present (no update). */
    bool probe(uint64_t byte_addr) const;

    /** Invalidate the block holding @p byte_addr if present. */
    void invalidate(uint64_t byte_addr);

    /** Drop all lines and reset replacement state indirectly via fills. */
    void reset();

    /** Zero the statistics (e.g. after cache warmup). */
    void clearStats();

    /**
     * Mirror this cache's hit/miss/bypass/eviction/writeback events
     * into live registry counters named "<prefix>.hits" etc., and let
     * the policy export its own instruments (set-dueling counters)
     * under the same prefix.  The registry must outlive the cache;
     * counters are atomics, so many caches may share one registry
     * (they aggregate) or use distinct prefixes.  Unattached caches
     * pay only a predictable null-pointer branch per event.
     */
    void attachTelemetry(telemetry::MetricRegistry &registry,
                         const std::string &prefix);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

    /** Number of valid lines in @p set (test/diagnostic aid). */
    unsigned validCount(uint64_t set) const;

    /** Block address stored in (set, way), if valid. */
    std::optional<uint64_t> blockAt(uint64_t set, unsigned way) const;

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    Line &line(uint64_t set, unsigned way);
    const Line &line(uint64_t set, unsigned way) const;

    /** Find way holding @p tag in @p set, or assoc if absent. */
    unsigned findWay(uint64_t set, uint64_t tag) const;

    /** First invalid way in @p set, or assoc if the set is full. */
    unsigned findInvalidWay(uint64_t set) const;

    /** Registry counters mirrored on the access path (see
     *  attachTelemetry); all null until attached. */
    struct LiveCounters
    {
        telemetry::Counter *hits = nullptr;
        telemetry::Counter *demandMisses = nullptr;
        telemetry::Counter *bypasses = nullptr;
        telemetry::Counter *evictions = nullptr;
        telemetry::Counter *writebacks = nullptr;
    };

    CacheConfig config_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::vector<Line> lines_; // sets * assoc, row-major by set
    CacheStats stats_;
    LiveCounters live_;
    uint64_t sequence_ = 0;
};

} // namespace gippr

#endif // GIPPR_CACHE_CACHE_HH_
