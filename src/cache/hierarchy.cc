/**
 * @file
 * Cache hierarchy implementation.
 */

#include "cache/hierarchy.hh"

#include "util/check.hh"

namespace gippr
{

Hierarchy::Hierarchy(const HierarchyConfig &config,
                     const PolicyFactory &l1_policy,
                     const PolicyFactory &l2_policy,
                     const PolicyFactory &llc_policy)
    : inclusive_(config.inclusiveLlc)
{
    l1_ = std::make_unique<SetAssocCache>(config.l1,
                                          l1_policy(config.l1));
    l2_ = std::make_unique<SetAssocCache>(config.l2,
                                          l2_policy(config.l2));
    llc_ = std::make_unique<SetAssocCache>(config.llc,
                                           llc_policy(config.llc));
}

void
Hierarchy::backInvalidate(uint64_t block_addr)
{
    const uint64_t byte_addr = block_addr << llc_->config().blockShift();
    l1_->invalidate(byte_addr);
    l2_->invalidate(byte_addr);
}

HitLevel
Hierarchy::access(uint64_t byte_addr, bool is_write, uint64_t pc)
{
    const AccessType type =
        is_write ? AccessType::Store : AccessType::Load;

    GIPPR_CHECK(type != AccessType::Writeback);
    AccessResult r1 = l1_->access(byte_addr, type, pc);
    if (r1.hit)
        return HitLevel::L1;

    // L1 victim writes back into L2.
    if (r1.evictedBlock && r1.evictedDirty) {
        uint64_t wb_addr = *r1.evictedBlock << l1_->config().blockShift();
        AccessResult wb = l2_->access(wb_addr, AccessType::Writeback, 0);
        if (wb.evictedBlock && wb.evictedDirty) {
            uint64_t wb2 = *wb.evictedBlock << l2_->config().blockShift();
            AccessResult wbr = llc_->access(wb2, AccessType::Writeback, 0);
            if (inclusive_ && wbr.evictedBlock)
                backInvalidate(*wbr.evictedBlock);
        }
    }

    AccessResult r2 = l2_->access(byte_addr, type, pc);
    if (r2.evictedBlock && r2.evictedDirty) {
        uint64_t wb_addr = *r2.evictedBlock << l2_->config().blockShift();
        AccessResult wbr = llc_->access(wb_addr, AccessType::Writeback, 0);
        if (inclusive_ && wbr.evictedBlock)
            backInvalidate(*wbr.evictedBlock);
    }
    if (r2.hit)
        return HitLevel::L2;

    // Under inclusion a line absent from the LLC must also be absent
    // above it, so an LLC demand miss can never follow an upper hit.
    GIPPR_DCHECK(!inclusive_ || llc_->probe(byte_addr) ||
                 (!l1_->probe(byte_addr) && !l2_->probe(byte_addr)));
    AccessResult r3 = llc_->access(byte_addr, type, pc);
    // LLC dirty victims go to memory.  Under inclusion, an LLC
    // eviction also back-invalidates the line from the levels above
    // (any dirty upper-level copy is modelled as written through to
    // memory with the victim).
    if (inclusive_ && r3.evictedBlock)
        backInvalidate(*r3.evictedBlock);
    return r3.hit ? HitLevel::Llc : HitLevel::Memory;
}

void
Hierarchy::clearStats()
{
    l1_->clearStats();
    l2_->clearStats();
    llc_->clearStats();
}

Trace
Hierarchy::filterToLlc(const Trace &cpu_trace,
                       const HierarchyConfig &config,
                       const PolicyFactory &l1_policy,
                       const PolicyFactory &l2_policy)
{
    SetAssocCache l1(config.l1, l1_policy(config.l1));
    SetAssocCache l2(config.l2, l2_policy(config.l2));

    Trace llc_trace;
    uint64_t pending_gap = 0;

    auto emit = [&](uint64_t addr, uint64_t pc, bool is_write) {
        MemRecord rec;
        // The first emitted record absorbs the accumulated gap; a gap
        // of zero is bumped to one only for the very first record so
        // instruction totals stay faithful otherwise.
        rec.instGap = static_cast<uint32_t>(pending_gap);
        pending_gap = 0;
        rec.addr = addr;
        rec.pc = pc;
        rec.isWrite = is_write;
        llc_trace.append(rec);
    };

    for (const auto &rec : cpu_trace.records()) {
        pending_gap += rec.instGap;
        const AccessType type =
            rec.isWrite ? AccessType::Store : AccessType::Load;

        AccessResult r1 = l1.access(rec.addr, type, rec.pc);
        if (r1.hit)
            continue;

        if (r1.evictedBlock && r1.evictedDirty) {
            uint64_t wb_addr = *r1.evictedBlock
                               << config.l1.blockShift();
            AccessResult wb = l2.access(wb_addr, AccessType::Writeback, 0);
            if (wb.evictedBlock && wb.evictedDirty) {
                emit(*wb.evictedBlock << config.l2.blockShift(), 0, true);
            }
        }

        AccessResult r2 = l2.access(rec.addr, type, rec.pc);
        if (r2.evictedBlock && r2.evictedDirty)
            emit(*r2.evictedBlock << config.l2.blockShift(), 0, true);
        if (!r2.hit)
            emit(rec.addr, rec.pc, rec.isWrite);
    }

    return llc_trace;
}

} // namespace gippr
