/**
 * @file
 * Set-associative cache implementation.
 */

#include "cache/cache.hh"

#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

SetAssocCache::SetAssocCache(const CacheConfig &config,
                             std::unique_ptr<ReplacementPolicy> policy)
    : config_(config), policy_(std::move(policy))
{
    config_.validate();
    if (!policy_)
        fatal(config_.name + ": null replacement policy");
    lines_.resize(config_.sets() * config_.assoc);
}

SetAssocCache::Line &
SetAssocCache::line(uint64_t set, unsigned way)
{
    GIPPR_CHECK(set < config_.sets());
    GIPPR_CHECK(way < config_.assoc);
    return lines_[set * config_.assoc + way];
}

const SetAssocCache::Line &
SetAssocCache::line(uint64_t set, unsigned way) const
{
    GIPPR_CHECK(set < config_.sets());
    GIPPR_CHECK(way < config_.assoc);
    return lines_[set * config_.assoc + way];
}

unsigned
SetAssocCache::findWay(uint64_t set, uint64_t tag) const
{
    for (unsigned w = 0; w < config_.assoc; ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.tag == tag)
            return w;
    }
    return config_.assoc;
}

unsigned
SetAssocCache::findInvalidWay(uint64_t set) const
{
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (!line(set, w).valid)
            return w;
    }
    return config_.assoc;
}

AccessResult
SetAssocCache::access(uint64_t byte_addr, AccessType type, uint64_t pc)
{
    const uint64_t set = config_.setIndex(byte_addr);
    const uint64_t tag = config_.tag(byte_addr);
    const bool demand = type != AccessType::Writeback;

    AccessInfo info;
    info.set = set;
    info.blockAddr = config_.blockAddr(byte_addr);
    info.pc = pc;
    info.type = type;
    info.sequence = sequence_++;

    ++stats_.accesses;
    if (demand)
        ++stats_.demandAccesses;

    AccessResult result;
    unsigned way = findWay(set, tag);
    if (way != config_.assoc) {
        // Hit.
        ++stats_.hits;
        if (live_.hits)
            live_.hits->increment();
        result.hit = true;
        result.way = way;
        if (type != AccessType::Load)
            line(set, way).dirty = true;
        policy_->onHit(way, info);
        return result;
    }

    // Miss.
    ++stats_.misses;
    if (demand) {
        ++stats_.demandMisses;
        if (live_.demandMisses)
            live_.demandMisses->increment();
    }
    policy_->onMiss(info);

    if (demand && policy_->shouldBypass(info)) {
        ++stats_.bypasses;
        if (live_.bypasses)
            live_.bypasses->increment();
        result.bypassed = true;
        result.way = config_.assoc; // sentinel: not resident
        return result;
    }

    way = findInvalidWay(set);
    if (way == config_.assoc) {
        way = policy_->victim(info);
        if (way >= config_.assoc)
            panic(config_.name + ": policy returned way out of range");
        Line &victim_line = line(set, way);
        GIPPR_CHECK(victim_line.valid);
        ++stats_.evictions;
        if (live_.evictions)
            live_.evictions->increment();
        result.evictedBlock = (victim_line.tag << config_.setShift()) | set;
        result.evictedDirty = victim_line.dirty;
        if (victim_line.dirty) {
            ++stats_.writebacks;
            if (live_.writebacks)
                live_.writebacks->increment();
        }
    }

    Line &l = line(set, way);
    l.tag = tag;
    l.valid = true;
    l.dirty = type != AccessType::Load;
    result.way = way;
    policy_->onInsert(way, info);
    return result;
}

bool
SetAssocCache::probe(uint64_t byte_addr) const
{
    return findWay(config_.setIndex(byte_addr), config_.tag(byte_addr)) !=
           config_.assoc;
}

void
SetAssocCache::invalidate(uint64_t byte_addr)
{
    const uint64_t set = config_.setIndex(byte_addr);
    unsigned way = findWay(set, config_.tag(byte_addr));
    if (way == config_.assoc)
        return;
    line(set, way).valid = false;
    line(set, way).dirty = false;
    policy_->onInvalidate(set, way);
}

void
SetAssocCache::reset()
{
    for (uint64_t s = 0; s < config_.sets(); ++s) {
        for (unsigned w = 0; w < config_.assoc; ++w) {
            if (line(s, w).valid) {
                line(s, w).valid = false;
                line(s, w).dirty = false;
                policy_->onInvalidate(s, w);
            }
        }
    }
    clearStats();
}

void
SetAssocCache::clearStats()
{
    stats_ = CacheStats{};
}

void
SetAssocCache::attachTelemetry(telemetry::MetricRegistry &registry,
                               const std::string &prefix)
{
    live_.hits = &registry.counter(prefix + ".hits");
    live_.demandMisses = &registry.counter(prefix + ".demand_misses");
    live_.bypasses = &registry.counter(prefix + ".bypasses");
    live_.evictions = &registry.counter(prefix + ".evictions");
    live_.writebacks = &registry.counter(prefix + ".writebacks");
    policy_->attachTelemetry(registry, prefix);
}

unsigned
SetAssocCache::validCount(uint64_t set) const
{
    unsigned n = 0;
    for (unsigned w = 0; w < config_.assoc; ++w)
        if (line(set, w).valid)
            ++n;
    return n;
}

std::optional<uint64_t>
SetAssocCache::blockAt(uint64_t set, unsigned way) const
{
    const Line &l = line(set, way);
    if (!l.valid)
        return std::nullopt;
    return (l.tag << config_.setShift()) | set;
}

} // namespace gippr
