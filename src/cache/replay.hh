/**
 * @file
 * Canonical LLC trace replay.
 *
 * Every consumer of a filtered LLC trace (policy-under-test runs, the
 * GA fitness function, Belady MIN) must interpret records identically
 * or miss counts are not comparable.  The convention: records with a
 * zero PC and the write flag are L2 writebacks (AccessType::Writeback,
 * not counted as demand); all other records are demand loads/stores.
 */

#ifndef GIPPR_CACHE_REPLAY_HH_
#define GIPPR_CACHE_REPLAY_HH_

#include "cache/cache.hh"
#include "trace/record.hh"
#include "trace/trace.hh"

namespace gippr
{

/** Access type of an LLC trace record under the replay convention. */
inline AccessType
recordType(const MemRecord &rec)
{
    if (rec.isWrite && rec.pc == 0)
        return AccessType::Writeback;
    return rec.isWrite ? AccessType::Store : AccessType::Load;
}

/**
 * Replay @p trace against @p cache; statistics are cleared after the
 * first @p warmup records so only the measured region is counted.
 */
void replayTrace(SetAssocCache &cache, const Trace &trace,
                 size_t warmup = 0);

/**
 * Strip writeback records, keeping only the demand stream.
 *
 * Used by the trace-driven miss experiments: Belady's MIN is only a
 * valid lower bound when every policy replays the identical reference
 * string and allocates on every miss, and writeback allocations act
 * as accidental prefetches that break that premise.  Instruction gaps
 * of dropped records are folded into the next demand record so MPKI
 * denominators are preserved.
 */
Trace demandOnlyTrace(const Trace &trace);

} // namespace gippr

#endif // GIPPR_CACHE_REPLAY_HH_
