/**
 * @file
 * Three-level cache hierarchy (L1D -> L2 -> LLC).
 *
 * The hierarchy plays two roles, mirroring the paper's methodology:
 *
 *  1. In the performance simulator it services each CPU reference and
 *     reports which level supplied the data, so the CPU model can apply
 *     per-level latencies.
 *  2. As a *filter*: the paper's traces contain only the references
 *     that survive the L1/L2 and reach the LLC.  filterToLlc() runs a
 *     CPU-level trace through L1+L2 and emits the resulting LLC access
 *     stream, which the GA fitness function and the offline MIN
 *     simulator consume.
 *
 * The hierarchy is non-inclusive and writeback; dirty evictions cascade
 * down as Writeback accesses.
 */

#ifndef GIPPR_CACHE_HIERARCHY_HH_
#define GIPPR_CACHE_HIERARCHY_HH_

#include <functional>
#include <memory>

#include "cache/cache.hh"
#include "trace/trace.hh"

namespace gippr
{

/** Where a demand reference was satisfied. */
enum class HitLevel : uint8_t { L1, L2, Llc, Memory };

/** Factory that builds a replacement policy for a given geometry. */
using PolicyFactory =
    std::function<std::unique_ptr<ReplacementPolicy>(const CacheConfig &)>;

/** Configuration for the full hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1 = CacheConfig::paperL1d();
    CacheConfig l2 = CacheConfig::paperL2();
    CacheConfig llc = CacheConfig::paperLlc();
    /**
     * Enforce LLC inclusion: evicting an LLC line back-invalidates it
     * from the L1 and L2 above.  The paper notes inclusion is why
     * PDP's bypass mode is unusable in inclusive designs; with this
     * flag the hierarchy maintains the invariant (and the policy's
     * shouldBypass must stay false — a bypassed fill would violate
     * it, so bypass requests are ignored in inclusive mode by virtue
     * of the LLC being filled before the upper levels here).
     */
    bool inclusiveLlc = false;
};

/** L1D -> L2 -> LLC with pluggable per-level replacement. */
class Hierarchy
{
  public:
    /**
     * @param config      per-level geometries
     * @param l1_policy   factory for the L1 policy (typically LRU)
     * @param l2_policy   factory for the L2 policy (typically LRU)
     * @param llc_policy  factory for the LLC policy under study
     */
    Hierarchy(const HierarchyConfig &config, const PolicyFactory &l1_policy,
              const PolicyFactory &l2_policy,
              const PolicyFactory &llc_policy);

    /** Service one demand reference; returns the supplying level. */
    HitLevel access(uint64_t byte_addr, bool is_write, uint64_t pc = 0);

    SetAssocCache &l1() { return *l1_; }
    SetAssocCache &l2() { return *l2_; }
    SetAssocCache &llc() { return *llc_; }
    const SetAssocCache &l1() const { return *l1_; }
    const SetAssocCache &l2() const { return *l2_; }
    const SetAssocCache &llc() const { return *llc_; }

    /** Clear statistics at every level (post-warmup). */
    void clearStats();

    /**
     * Run a CPU-level trace through L1+L2 only and return the access
     * stream that reaches the LLC.  Demand misses become Load/Store
     * records; L2 dirty evictions become write records (pc == 0).
     * Instruction gaps are accumulated so MPKI denominators match the
     * original trace.
     */
    static Trace filterToLlc(const Trace &cpu_trace,
                             const HierarchyConfig &config,
                             const PolicyFactory &l1_policy,
                             const PolicyFactory &l2_policy);

  private:
    /** Remove an LLC-evicted block from the upper levels. */
    void backInvalidate(uint64_t block_addr);

    bool inclusive_ = false;
    std::unique_ptr<SetAssocCache> l1_;
    std::unique_ptr<SetAssocCache> l2_;
    std::unique_ptr<SetAssocCache> llc_;
};

} // namespace gippr

#endif // GIPPR_CACHE_HIERARCHY_HH_
