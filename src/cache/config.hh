/**
 * @file
 * Cache geometry configuration.
 */

#ifndef GIPPR_CACHE_CONFIG_HH_
#define GIPPR_CACHE_CONFIG_HH_

#include <cstdint>
#include <string>

namespace gippr
{

/**
 * Geometry of one set-associative cache.
 *
 * All fields are validated by validate(); sizes and block size must be
 * powers of two and consistent with the associativity.
 */
struct CacheConfig
{
    std::string name = "cache";
    /** Total capacity in bytes. */
    uint64_t sizeBytes = 4 * 1024 * 1024;
    /** Ways per set. */
    unsigned assoc = 16;
    /** Line size in bytes. */
    unsigned blockBytes = 64;

    /** Number of sets implied by the geometry. */
    uint64_t sets() const;

    /** log2(blockBytes). */
    unsigned blockShift() const;

    /** log2(sets()). */
    unsigned setShift() const;

    /** Block address (byte address with offset stripped). */
    uint64_t blockAddr(uint64_t byte_addr) const;

    /** Set index of a byte address. */
    uint64_t setIndex(uint64_t byte_addr) const;

    /** Tag of a byte address (block address with set bits stripped). */
    uint64_t tag(uint64_t byte_addr) const;

    /** Throws std::runtime_error (via fatal) on inconsistent geometry. */
    void validate() const;

    /** The paper's LLC: 4MB, 16-way, 64B lines. */
    static CacheConfig paperLlc();
    /** The paper's L1 data cache: 32KB, 8-way. */
    static CacheConfig paperL1d();
    /** The paper's unified L2: 256KB, 8-way. */
    static CacheConfig paperL2();
    /**
     * A scaled-down LLC (1MB, 16-way) used by default in the benches so
     * full-suite experiments finish quickly; the workloads are scaled
     * with it.
     */
    static CacheConfig benchLlc();
};

} // namespace gippr

#endif // GIPPR_CACHE_CONFIG_HH_
