/**
 * @file
 * LLC trace replay implementation.
 */

#include "cache/replay.hh"

#include "util/check.hh"

namespace gippr
{

void
replayTrace(SetAssocCache &cache, const Trace &trace, size_t warmup)
{
    GIPPR_CHECK(warmup <= trace.size());
    if (warmup == 0)
        cache.clearStats();
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i == warmup && warmup != 0)
            cache.clearStats();
        const MemRecord &r = trace[i];
        cache.access(r.addr, recordType(r), r.pc);
    }
}

Trace
demandOnlyTrace(const Trace &trace)
{
    Trace out;
    out.reserve(trace.size());
    uint64_t pending_gap = 0;
    for (const auto &r : trace.records()) {
        if (recordType(r) == AccessType::Writeback) {
            pending_gap += r.instGap;
            continue;
        }
        MemRecord d = r;
        d.instGap = static_cast<uint32_t>(d.instGap + pending_gap);
        pending_gap = 0;
        out.append(d);
    }
    return out;
}

} // namespace gippr
