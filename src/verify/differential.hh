/**
 * @file
 * Differential policy checking: production policy vs. reference oracle.
 *
 * A DifferentialChecker is itself a ReplacementPolicy that wraps the
 * policy under test and its reference oracle.  Installed into a real
 * SetAssocCache, it forwards every event to both models and, after
 * each state-changing event, compares the full per-set recency state
 * (and any auxiliary global state such as the duel winner).  Victim
 * choices are compared on every eviction.  The first divergence is
 * captured with the access index and both models' state dumps —
 * everything needed to reproduce the failing access — and further
 * comparison stops so the report stays readable.
 *
 * replayDifferential() drives a mirror through an access trace with
 * optional periodic invalidations (exercising the onInvalidate path
 * that workload replay alone never reaches).
 */

#ifndef GIPPR_VERIFY_DIFFERENTIAL_HH_
#define GIPPR_VERIFY_DIFFERENTIAL_HH_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "cache/cache.hh"
#include "cache/replacement.hh"
#include "trace/trace.hh"
#include "verify/oracle.hh"

namespace gippr::verify
{

/** First point where the two models disagreed. */
struct Divergence
{
    /** Events processed before the divergence (0-based index). */
    uint64_t eventIndex = 0;
    uint64_t set = 0;
    /** What disagreed: "victim", "positions" or "aux". */
    std::string kind;
    /** Side-by-side dump of both models. */
    std::string detail;

    std::string toString() const;
};

/** Reads way -> position state out of a production policy. */
using PositionProbe =
    std::function<std::vector<unsigned>(const ReplacementPolicy &,
                                        uint64_t set)>;

/** Reads auxiliary global state ("" when none) out of a policy. */
using AuxProbe = std::function<std::string(const ReplacementPolicy &)>;

/** Policy-under-test + oracle, event-locked and compared. */
class DifferentialChecker : public ReplacementPolicy
{
  public:
    DifferentialChecker(std::unique_ptr<ReplacementPolicy> inner,
                        std::unique_ptr<ReferenceOracle> oracle,
                        PositionProbe probe, AuxProbe aux = {});

    unsigned victim(const AccessInfo &info) override;
    void onMiss(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override;
    size_t stateBitsPerSet() const override;

    /** First disagreement, if any. */
    const std::optional<Divergence> &divergence() const
    {
        return divergence_;
    }

    /** Individual state comparisons performed. */
    uint64_t comparisons() const { return comparisons_; }

    /** Events (victim/miss/insert/hit/invalidate) processed. */
    uint64_t events() const { return events_; }

    const ReplacementPolicy &inner() const { return *inner_; }
    const ReferenceOracle &oracle() const { return *oracle_; }

  private:
    /** Compare per-set positions (+ aux state) after an event. */
    void compareState(uint64_t set);

    void recordDivergence(uint64_t set, const std::string &kind,
                          const std::string &detail);

    std::unique_ptr<ReplacementPolicy> inner_;
    std::unique_ptr<ReferenceOracle> oracle_;
    PositionProbe probe_;
    AuxProbe aux_;
    std::optional<Divergence> divergence_;
    uint64_t comparisons_ = 0;
    uint64_t events_ = 0;
};

/**
 * Mirror registry: builds a production policy + matching oracle pair
 * by name.  Supported names: LRU, LIP, GIPLR, PLRU, GIPPR, DGIPPR2,
 * DGIPPR4.  At 16 ways the IPV-driven mirrors use the locally evolved
 * vectors; at other associativities a deterministic nontrivial vector
 * is synthesized so every geometry is checkable.
 */
std::unique_ptr<DifferentialChecker>
makeMirror(const std::string &policy, const CacheConfig &config);

/** Names makeMirror accepts, in canonical order. */
std::vector<std::string> mirrorNames();

/** Replay knobs. */
struct ReplayOptions
{
    /** Invalidate a recently touched block every N demand accesses
     *  (0 disables); exercises the onInvalidate path. */
    uint64_t invalidateEvery = 0;
    /** Seed for choosing which block to invalidate. */
    uint64_t invalidateSeed = 0x1234;
};

/** Outcome of one differential replay. */
struct DifferentialResult
{
    std::string policy;
    std::string stream;
    uint64_t accesses = 0;
    uint64_t invalidates = 0;
    uint64_t comparisons = 0;
    std::optional<Divergence> divergence;

    bool ok() const { return !divergence.has_value(); }
};

/**
 * Replay @p trace through a checker-wrapped cache of geometry
 * @p config.  The checker's first divergence (if any) is returned in
 * the result; the replay itself always completes.
 */
DifferentialResult
replayDifferential(const std::string &policy, const CacheConfig &config,
                   const Trace &trace, const ReplayOptions &opts = {});

} // namespace gippr::verify

#endif // GIPPR_VERIFY_DIFFERENTIAL_HH_
