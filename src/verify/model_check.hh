/**
 * @file
 * Exhaustive PLRU-tree model checking.
 *
 * The paper's Section 3 argument rests on structural invariants of the
 * PseudoLRU tree that hold for *every* bit assignment, not just the
 * states a workload happens to reach:
 *
 *  1. the k leaf positions form a permutation of 0..k-1;
 *  2. the PMRU block sits at position 0 and the PLRU victim at the
 *     all-ones position k-1 (and findPlru agrees with wayAtPosition);
 *  3. setPosition(way, x) round-trips (position(way) == x afterwards),
 *     preserves the permutation property, and touches at most log2(k)
 *     bits, all on the way's leaf-to-root path;
 *  4. promoteMru(way) is exactly setPosition(way, 0) (Fig. 6 == Fig. 9
 *     at target 0).
 *
 * Because a k-way tree has only 2^(k-1) states and k*k (way, target)
 * transitions per state, the whole space is enumerable for the
 * associativities that matter (2..16 ways: at most ~8.4M transitions),
 * so these invariants are *proved* by enumeration rather than spot
 * checked.  The checker stops collecting after maxFailures so a broken
 * tree implementation produces a readable report, not a flood.
 */

#ifndef GIPPR_VERIFY_MODEL_CHECK_HH_
#define GIPPR_VERIFY_MODEL_CHECK_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace gippr::verify
{

/** One violated invariant, with enough context to reproduce it. */
struct ModelCheckFailure
{
    /** Which invariant broke ("permutation", "round-trip", ...). */
    std::string invariant;
    /** Tree bit assignment the failure occurred in (LSB = node 0). */
    uint64_t state = 0;
    /** Human-readable specifics (way, target, expected vs. got). */
    std::string detail;

    std::string toString() const;
};

/** Outcome of exhaustively checking one associativity. */
struct ModelCheckResult
{
    unsigned ways = 0;
    /** Bit assignments enumerated (2^(ways-1)). */
    uint64_t statesChecked = 0;
    /** (state, way, target) transitions exercised. */
    uint64_t transitionsChecked = 0;
    /** Individual invariant evaluations that passed. */
    uint64_t checksPassed = 0;
    /** First failures encountered (capped; empty means proven). */
    std::vector<ModelCheckFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Knobs for one model-check run. */
struct ModelCheckOptions
{
    /** Stop collecting failures after this many. */
    size_t maxFailures = 8;
};

/**
 * Exhaustively verify the PLRU-tree invariants for @p ways.
 * @pre ways is a power of two in [2, 64]
 */
ModelCheckResult modelCheckPlruTree(unsigned ways,
                                    const ModelCheckOptions &opts = {});

/**
 * Run modelCheckPlruTree over the paper's associativity sweep
 * (default {2, 4, 8, 16}), one result per associativity.
 */
std::vector<ModelCheckResult>
modelCheckSweep(const std::vector<unsigned> &ways_list = {2, 4, 8, 16},
                const ModelCheckOptions &opts = {});

} // namespace gippr::verify

#endif // GIPPR_VERIFY_MODEL_CHECK_HH_
