/**
 * @file
 * Slow reference models for differential policy checking.
 *
 * Each oracle re-implements one replacement policy's *semantics* with
 * deliberately different data structures and code paths than the
 * production policies, in the cross-model validation style of the
 * CRC-derived frameworks (e.g. Multi-step LRU validating against an
 * exact LRU oracle):
 *
 *  - RecencyStackOracle keeps an explicit position-ordered way list
 *    per set (the production RecencyStack keeps a way -> position
 *    array) and applies IPV moves by erase/insert;
 *  - PlruTreeOracle keeps each set's tree as one packed integer and
 *    derives positions top-down recursively (PlruTree walks leaf-up
 *    iteratively over a byte vector);
 *  - DuelOracle replicates DGIPPR's leader-set mapping and tournament
 *    bookkeeping from the documented formulas, over PlruTreeOracle
 *    trees.
 *
 * Oracles favour clarity over speed (O(k) scans everywhere); the
 * differential harness replays identical access streams through a
 * production policy and its oracle and compares full per-set state
 * after every event.
 */

#ifndef GIPPR_VERIFY_ORACLE_HH_
#define GIPPR_VERIFY_ORACLE_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ipv.hh"

namespace gippr::verify
{

/**
 * A reference replacement model: mirrors the ReplacementPolicy event
 * interface but exposes its full per-set state for comparison.
 * Writeback filtering is the caller's job — oracles are told only
 * about events that change state (the harness forwards writeback hits
 * and misses with demand=false so duel bookkeeping can skip them,
 * matching the production convention).
 */
class ReferenceOracle
{
  public:
    virtual ~ReferenceOracle() = default;

    /** Way the reference model would evict from a full @p set. */
    virtual unsigned victim(uint64_t set) const = 0;

    /** A miss occurred in @p set (before fill; demand misses only
     *  update duel state). */
    virtual void
    onMiss(uint64_t set, bool demand)
    {
        (void)set;
        (void)demand;
    }

    /** Line filled into (set, way). */
    virtual void onInsert(uint64_t set, unsigned way) = 0;

    /** Demand hit on (set, way).  Never called for writeback hits. */
    virtual void onHit(uint64_t set, unsigned way) = 0;

    /** Line (set, way) invalidated externally. */
    virtual void onInvalidate(uint64_t set, unsigned way) = 0;

    /** Recency-stack position of every way in @p set (way -> pos). */
    virtual std::vector<unsigned> positions(uint64_t set) const = 0;

    /**
     * Auxiliary global state rendered as a string (e.g. the duel
     * winner); "" when the model has none.  Compared verbatim against
     * the production policy's auxiliary state.
     */
    virtual std::string auxState() const { return ""; }

    virtual std::string name() const = 0;

    /** Render one set's state for divergence reports. */
    std::string dumpSet(uint64_t set) const;
};

/**
 * IPV-driven true-recency-stack oracle (LRU when the vector is all
 * zeros, LIP for lruInsertion, GIPLR for arbitrary vectors).
 */
class RecencyStackOracle : public ReferenceOracle
{
  public:
    RecencyStackOracle(uint64_t sets, unsigned ways, Ipv ipv);

    unsigned victim(uint64_t set) const override;
    void onInsert(uint64_t set, unsigned way) override;
    void onHit(uint64_t set, unsigned way) override;
    void onInvalidate(uint64_t set, unsigned way) override;
    std::vector<unsigned> positions(uint64_t set) const override;
    std::string name() const override { return "RecencyStackOracle"; }

  private:
    /** Index of @p way in @p order (its position). */
    static unsigned indexOf(const std::vector<uint8_t> &order,
                            unsigned way);

    /** Move @p way to @p pos by erase + insert. */
    static void moveTo(std::vector<uint8_t> &order, unsigned way,
                       unsigned pos);

    unsigned ways_;
    Ipv ipv_;
    /** Per set: order[p] = way occupying position p. */
    std::vector<std::vector<uint8_t>> order_;
};

/**
 * IPV-driven PseudoLRU-tree oracle (classic PLRU when the vector is
 * all zeros — promotion to PMRU — and GIPPR for arbitrary vectors).
 * State is one packed integer of plru bits per set; positions are
 * derived top-down by recursion.
 */
class PlruTreeOracle : public ReferenceOracle
{
  public:
    PlruTreeOracle(uint64_t sets, unsigned ways, Ipv ipv);

    unsigned victim(uint64_t set) const override;
    void onInsert(uint64_t set, unsigned way) override;
    void onHit(uint64_t set, unsigned way) override;
    void onInvalidate(uint64_t set, unsigned way) override;
    std::vector<unsigned> positions(uint64_t set) const override;
    std::string name() const override { return "PlruTreeOracle"; }

    /** Position of @p way under packed bit state @p bits (exposed for
     *  the duel oracle and tests). */
    static unsigned positionOf(uint64_t bits, unsigned ways,
                               unsigned way);

    /** @p bits with @p way's path rewritten to occupy @p pos. */
    static uint64_t withPosition(uint64_t bits, unsigned ways,
                                 unsigned way, unsigned pos);

  protected:
    unsigned ways_;
    std::vector<uint64_t> bits_;

  private:
    Ipv ipv_;
};

/**
 * DGIPPR oracle: PLRU trees whose governing IPV is chosen per set by
 * an independently re-derived leader-set map plus saturating-counter
 * tournament (Qureshi single-PSEL at two vectors, Loh tournament
 * above).
 */
class DuelOracle : public PlruTreeOracle
{
  public:
    DuelOracle(uint64_t sets, unsigned ways, std::vector<Ipv> ipvs,
               unsigned leaders_per_policy, unsigned counter_bits);

    void onMiss(uint64_t set, bool demand) override;
    void onInsert(uint64_t set, unsigned way) override;
    void onHit(uint64_t set, unsigned way) override;
    std::string auxState() const override;
    std::string name() const override { return "DuelOracle"; }

    /** Follower-set vector index right now. */
    unsigned winner() const;

  private:
    /** Vector index leading @p set, or -1 for followers. */
    int owner(uint64_t set) const;

    const Ipv &ipvFor(uint64_t set) const;

    std::vector<Ipv> ipvs_;
    uint64_t sets_;
    unsigned leadersPerPolicy_;
    unsigned counterMax_;
    /** counters_[level][pair]: tournament counters, leaves first. */
    std::vector<std::vector<unsigned>> counters_;
};

} // namespace gippr::verify

#endif // GIPPR_VERIFY_ORACLE_HH_
