/**
 * @file
 * Lock-step equivalence oracle: scalar simulator vs fast replay model.
 *
 * The fast backend's headline guarantee is access-for-access equality
 * with the scalar simulator: same hits, same fill ways, same victims,
 * same writeback decisions, same duel outcomes.  Engine-level tests
 * can only compare final counters; this oracle drives one
 * SetAssocCache (with the spec's production policy) and one
 * SoaCacheModel through the same access stream and compares the
 * outcome of EVERY access, plus the full per-set recency state at a
 * configurable cadence.  The first divergence is captured with the
 * access index and a side-by-side dump of both models' set state —
 * everything needed to reproduce the failing access — reusing the
 * differential harness's Divergence record.
 *
 * Streams can be fed back-to-back through one oracle; state carries
 * over, exactly as it would across the phases of a real trace.
 */

#ifndef GIPPR_VERIFY_FASTPATH_ORACLE_HH_
#define GIPPR_VERIFY_FASTPATH_ORACLE_HH_

#include <optional>
#include <string>

#include "cache/cache.hh"
#include "sim/fastpath/soa_cache.hh"
#include "trace/trace.hh"
#include "verify/differential.hh"

namespace gippr::verify
{

/** Outcome of one lock-step replay. */
struct FastpathResult
{
    std::string policy;
    std::string stream;
    uint64_t accesses = 0;
    uint64_t comparisons = 0;
    std::optional<Divergence> divergence;

    bool ok() const { return !divergence.has_value(); }
    std::string toString() const;
};

/** Scalar SetAssocCache and SoaCacheModel, event-locked and compared. */
class FastpathOracle
{
  public:
    FastpathOracle(const fastpath::ReplaySpec &spec,
                   const CacheConfig &config);

    /**
     * Replay @p trace through both models.  Per-access outcomes are
     * compared on every access; full per-set positions (and the duel
     * winner) every @p state_check_every accesses and once at the end.
     * Comparison stops at the first divergence; the replay completes
     * either way so final counters remain meaningful.
     */
    FastpathResult run(const Trace &trace, const std::string &stream,
                       uint64_t state_check_every = 997);

    const fastpath::SoaCacheModel &model() const { return model_; }
    const SetAssocCache &scalar() const { return scalar_; }

  private:
    /** Side-by-side dump of set @p set in both models. */
    std::string dumpBoth(uint64_t set) const;

    std::vector<unsigned> scalarPositions(uint64_t set) const;

    void record(FastpathResult &result, uint64_t index, uint64_t set,
                const std::string &kind, const std::string &detail);

    void compareState(FastpathResult &result, uint64_t index,
                      uint64_t set);

    fastpath::ReplaySpec spec_;
    CacheConfig config_;
    SetAssocCache scalar_;
    fastpath::SoaCacheModel model_;
    uint64_t accessesSoFar_ = 0;
};

} // namespace gippr::verify

#endif // GIPPR_VERIFY_FASTPATH_ORACLE_HH_
