/**
 * @file
 * Differential harness implementation.
 */

#include "verify/differential.hh"

#include <deque>
#include <sstream>

#include "cache/replay.hh"
#include "core/dgippr.hh"
#include "core/giplr.hh"
#include "core/gippr.hh"
#include "core/plru.hh"
#include "core/vectors.hh"
#include "policies/lru.hh"
#include "util/check.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace gippr::verify
{

std::string
Divergence::toString() const
{
    std::ostringstream os;
    os << kind << " divergence at event " << eventIndex << ", set " << set
       << ": " << detail;
    return os.str();
}

DifferentialChecker::DifferentialChecker(
    std::unique_ptr<ReplacementPolicy> inner,
    std::unique_ptr<ReferenceOracle> oracle, PositionProbe probe,
    AuxProbe aux)
    : inner_(std::move(inner)), oracle_(std::move(oracle)),
      probe_(std::move(probe)), aux_(std::move(aux))
{
    GIPPR_CHECK(inner_ != nullptr);
    GIPPR_CHECK(oracle_ != nullptr);
    GIPPR_CHECK(probe_ != nullptr);
}

void
DifferentialChecker::recordDivergence(uint64_t set, const std::string &kind,
                                      const std::string &detail)
{
    if (divergence_)
        return;
    Divergence d;
    // Handlers bump events_ on entry; the diverging event's 0-based
    // index is therefore one less.
    d.eventIndex = events_ - 1;
    d.set = set;
    d.kind = kind;
    d.detail = detail;
    divergence_ = std::move(d);
}

void
DifferentialChecker::compareState(uint64_t set)
{
    if (divergence_)
        return;
    ++comparisons_;
    const std::vector<unsigned> got = probe_(*inner_, set);
    const std::vector<unsigned> want = oracle_->positions(set);
    if (got != want) {
        std::ostringstream os;
        os << inner_->name() << " positions [";
        for (unsigned p : got)
            os << ' ' << p;
        os << " ] vs " << oracle_->dumpSet(set);
        recordDivergence(set, "positions", os.str());
        return;
    }
    if (aux_) {
        const std::string got_aux = aux_(*inner_);
        const std::string want_aux = oracle_->auxState();
        if (got_aux != want_aux) {
            recordDivergence(set, "aux",
                             inner_->name() + " aux=" + got_aux + " vs " +
                                 oracle_->dumpSet(set));
        }
    }
}

unsigned
DifferentialChecker::victim(const AccessInfo &info)
{
    ++events_;
    const unsigned got = inner_->victim(info);
    if (!divergence_) {
        ++comparisons_;
        const unsigned want = oracle_->victim(info.set);
        if (got != want) {
            std::ostringstream os;
            os << inner_->name() << " evicts way " << got << " vs oracle way "
               << want << "; " << oracle_->dumpSet(info.set);
            recordDivergence(info.set, "victim", os.str());
        }
    }
    return got;
}

void
DifferentialChecker::onMiss(const AccessInfo &info)
{
    ++events_;
    inner_->onMiss(info);
    oracle_->onMiss(info.set, info.type != AccessType::Writeback);
    compareState(info.set);
}

void
DifferentialChecker::onInsert(unsigned way, const AccessInfo &info)
{
    ++events_;
    inner_->onInsert(way, info);
    oracle_->onInsert(info.set, way);
    compareState(info.set);
}

void
DifferentialChecker::onHit(unsigned way, const AccessInfo &info)
{
    ++events_;
    inner_->onHit(way, info);
    // Production policies ignore writeback hits by convention; the
    // oracle is only told about state-changing events.
    if (info.type != AccessType::Writeback)
        oracle_->onHit(info.set, way);
    compareState(info.set);
}

void
DifferentialChecker::onInvalidate(uint64_t set, unsigned way)
{
    ++events_;
    inner_->onInvalidate(set, way);
    oracle_->onInvalidate(set, way);
    compareState(set);
}

std::string
DifferentialChecker::name() const
{
    return inner_->name() + "+" + oracle_->name();
}

size_t
DifferentialChecker::stateBitsPerSet() const
{
    return inner_->stateBitsPerSet();
}

namespace
{

/**
 * Deterministic nontrivial IPV for associativities without a published
 * vector: mixes promotions toward MRU, a self-loop and an MRU demotion
 * so both shift directions are exercised.
 */
Ipv
syntheticIpv(unsigned ways, unsigned salt)
{
    std::vector<uint8_t> v(ways + 1, 0);
    for (unsigned i = 0; i < ways; ++i)
        v[i] = static_cast<uint8_t>((i / 2 + salt * (i % 3)) % ways);
    v[ways] = static_cast<uint8_t>((ways - 2 + salt) % ways);
    return Ipv(std::move(v));
}

std::vector<Ipv>
mirrorIpvs(const std::string &policy, unsigned ways)
{
    const bool paper_assoc = ways == 16;
    if (policy == "GIPLR") {
        return {paper_assoc ? local_vectors::giplr()
                            : syntheticIpv(ways, 1)};
    }
    if (policy == "GIPPR") {
        return {paper_assoc ? local_vectors::gippr()
                            : syntheticIpv(ways, 1)};
    }
    if (policy == "DGIPPR2") {
        if (paper_assoc)
            return local_vectors::dgippr2();
        return {syntheticIpv(ways, 1), syntheticIpv(ways, 2)};
    }
    if (policy == "DGIPPR4") {
        if (paper_assoc)
            return local_vectors::dgippr4();
        return {syntheticIpv(ways, 1), syntheticIpv(ways, 2),
                syntheticIpv(ways, 3), syntheticIpv(ways, 4)};
    }
    return {};
}

} // namespace

std::vector<std::string>
mirrorNames()
{
    return {"LRU", "LIP", "GIPLR", "PLRU", "GIPPR", "DGIPPR2", "DGIPPR4"};
}

std::unique_ptr<DifferentialChecker>
makeMirror(const std::string &policy, const CacheConfig &config)
{
    const unsigned ways = config.assoc;
    const uint64_t sets = config.sets();

    if (policy == "LRU" || policy == "LIP" || policy == "GIPLR") {
        Ipv ipv = policy == "LRU"   ? Ipv::lru(ways)
                  : policy == "LIP" ? Ipv::lruInsertion(ways)
                                    : mirrorIpvs(policy, ways).front();
        std::unique_ptr<ReplacementPolicy> inner;
        PositionProbe probe;
        if (policy == "LRU") {
            inner = std::make_unique<LruPolicy>(config);
            probe = [ways](const ReplacementPolicy &p, uint64_t set) {
                const auto &lru = dynamic_cast<const LruPolicy &>(p);
                std::vector<unsigned> pos(ways);
                for (unsigned w = 0; w < ways; ++w)
                    pos[w] = lru.position(set, w);
                return pos;
            };
        } else {
            inner = std::make_unique<GiplrPolicy>(config, ipv);
            probe = [ways](const ReplacementPolicy &p, uint64_t set) {
                const auto &g = dynamic_cast<const GiplrPolicy &>(p);
                std::vector<unsigned> pos(ways);
                for (unsigned w = 0; w < ways; ++w)
                    pos[w] = g.position(set, w);
                return pos;
            };
        }
        auto oracle = std::make_unique<RecencyStackOracle>(sets, ways,
                                                           std::move(ipv));
        return std::make_unique<DifferentialChecker>(
            std::move(inner), std::move(oracle), std::move(probe));
    }

    if (policy == "PLRU" || policy == "GIPPR") {
        Ipv ipv = policy == "PLRU" ? Ipv::lru(ways)
                                   : mirrorIpvs(policy, ways).front();
        std::unique_ptr<ReplacementPolicy> inner;
        PositionProbe probe;
        if (policy == "PLRU") {
            inner = std::make_unique<PlruPolicy>(config);
            probe = [ways](const ReplacementPolicy &p, uint64_t set) {
                const auto &plru = dynamic_cast<const PlruPolicy &>(p);
                std::vector<unsigned> pos(ways);
                for (unsigned w = 0; w < ways; ++w)
                    pos[w] = plru.tree(set).position(w);
                return pos;
            };
        } else {
            inner = std::make_unique<GipprPolicy>(config, ipv);
            probe = [ways](const ReplacementPolicy &p, uint64_t set) {
                const auto &g = dynamic_cast<const GipprPolicy &>(p);
                std::vector<unsigned> pos(ways);
                for (unsigned w = 0; w < ways; ++w)
                    pos[w] = g.tree(set).position(w);
                return pos;
            };
        }
        auto oracle =
            std::make_unique<PlruTreeOracle>(sets, ways, std::move(ipv));
        return std::make_unique<DifferentialChecker>(
            std::move(inner), std::move(oracle), std::move(probe));
    }

    if (policy == "DGIPPR2" || policy == "DGIPPR4") {
        std::vector<Ipv> ipvs = mirrorIpvs(policy, ways);
        const unsigned leaders = 32;
        const unsigned counter_bits = 11;
        auto inner =
            std::make_unique<DgipprPolicy>(config, ipvs, leaders,
                                           counter_bits);
        PositionProbe probe = [ways](const ReplacementPolicy &p,
                                     uint64_t set) {
            const auto &d = dynamic_cast<const DgipprPolicy &>(p);
            std::vector<unsigned> pos(ways);
            for (unsigned w = 0; w < ways; ++w)
                pos[w] = d.tree(set).position(w);
            return pos;
        };
        AuxProbe aux = [](const ReplacementPolicy &p) {
            return std::to_string(
                dynamic_cast<const DgipprPolicy &>(p).currentWinner());
        };
        auto oracle = std::make_unique<DuelOracle>(
            sets, ways, std::move(ipvs), leaders, counter_bits);
        return std::make_unique<DifferentialChecker>(
            std::move(inner), std::move(oracle), std::move(probe),
            std::move(aux));
    }

    fatal("makeMirror: unknown policy '" + policy + "'");
}

DifferentialResult
replayDifferential(const std::string &policy, const CacheConfig &config,
                   const Trace &trace, const ReplayOptions &opts)
{
    auto checker_owner = makeMirror(policy, config);
    DifferentialChecker *checker = checker_owner.get();
    SetAssocCache cache(config, std::move(checker_owner));

    DifferentialResult result;
    result.policy = policy;

    Rng rng(opts.invalidateSeed);
    std::deque<uint64_t> recent;
    uint64_t demand_seen = 0;
    for (const MemRecord &rec : trace) {
        cache.access(rec.addr, recordType(rec), rec.pc);
        ++result.accesses;
        if (opts.invalidateEvery == 0)
            continue;
        recent.push_back(rec.addr);
        if (recent.size() > 64)
            recent.pop_front();
        if (recordType(rec) != AccessType::Writeback &&
            ++demand_seen % opts.invalidateEvery == 0) {
            const uint64_t addr =
                recent[rng.nextBounded(recent.size())];
            if (cache.probe(addr)) {
                cache.invalidate(addr);
                ++result.invalidates;
            }
        }
    }
    result.comparisons = checker->comparisons();
    result.divergence = checker->divergence();
    return result;
}

} // namespace gippr::verify
