/**
 * @file
 * Reference-oracle implementations.
 */

#include "verify/oracle.hh"

#include <algorithm>
#include <sstream>

#include "util/bitops.hh"
#include "util/check.hh"
#include "util/log.hh"

namespace gippr::verify
{

std::string
ReferenceOracle::dumpSet(uint64_t set) const
{
    std::ostringstream os;
    os << name() << " set " << set << " positions [";
    for (unsigned p : positions(set))
        os << ' ' << p;
    os << " ]";
    const std::string aux = auxState();
    if (!aux.empty())
        os << " aux=" << aux;
    return os.str();
}

// ---------------------------------------------------------------------------
// RecencyStackOracle

RecencyStackOracle::RecencyStackOracle(uint64_t sets, unsigned ways,
                                       Ipv ipv)
    : ways_(ways), ipv_(std::move(ipv))
{
    if (ipv_.ways() != ways_)
        fatal("RecencyStackOracle: IPV arity mismatch");
    std::vector<uint8_t> identity(ways_);
    for (unsigned w = 0; w < ways_; ++w)
        identity[w] = static_cast<uint8_t>(w);
    order_.assign(sets, identity);
}

unsigned
RecencyStackOracle::indexOf(const std::vector<uint8_t> &order, unsigned way)
{
    for (unsigned p = 0; p < order.size(); ++p) {
        if (order[p] == way)
            return p;
    }
    panic("RecencyStackOracle: way missing from order list");
}

void
RecencyStackOracle::moveTo(std::vector<uint8_t> &order, unsigned way,
                           unsigned pos)
{
    // Erase + insert reproduces the generalized IPV move (Section
    // 2.3): the intervening blocks shift by one in whichever direction
    // makes room.
    order.erase(order.begin() + indexOf(order, way));
    order.insert(order.begin() + pos, static_cast<uint8_t>(way));
}

unsigned
RecencyStackOracle::victim(uint64_t set) const
{
    return order_[set].back();
}

void
RecencyStackOracle::onInsert(uint64_t set, unsigned way)
{
    GIPPR_CHECK(way < ways_);
    moveTo(order_[set], way, ipv_.insertion());
}

void
RecencyStackOracle::onHit(uint64_t set, unsigned way)
{
    GIPPR_CHECK(way < ways_);
    std::vector<uint8_t> &order = order_[set];
    moveTo(order, way, ipv_.promotion(indexOf(order, way)));
}

void
RecencyStackOracle::onInvalidate(uint64_t set, unsigned way)
{
    moveTo(order_[set], way, ways_ - 1);
}

std::vector<unsigned>
RecencyStackOracle::positions(uint64_t set) const
{
    std::vector<unsigned> pos(ways_, 0);
    for (unsigned p = 0; p < ways_; ++p)
        pos[order_[set][p]] = p;
    return pos;
}

// ---------------------------------------------------------------------------
// PlruTreeOracle

namespace
{

/**
 * Recursive top-down position derivation over a packed tree.  The
 * subtree rooted at @p node spans ways [lo, hi); descending toward
 * @p way contributes, at this level, the node's bit when going right
 * and its complement when going left, as the bit *above* the bits
 * already accumulated.
 */
unsigned
positionRec(uint64_t bits, unsigned node, unsigned lo, unsigned hi,
            unsigned way)
{
    if (hi - lo == 1)
        return 0;
    const unsigned mid = lo + (hi - lo) / 2;
    const unsigned bit = static_cast<unsigned>(getBit(bits, node));
    if (way < mid) {
        const unsigned below = positionRec(bits, 2 * node + 1, lo, mid, way);
        return ((1 - bit) << floorLog2(hi - lo - 1)) | below;
    }
    const unsigned below = positionRec(bits, 2 * node + 2, mid, hi, way);
    return (bit << floorLog2(hi - lo - 1)) | below;
}

/** Recursive top-down path rewrite: make @p way occupy @p pos. */
uint64_t
setPositionRec(uint64_t bits, unsigned node, unsigned lo, unsigned hi,
               unsigned way, unsigned pos)
{
    if (hi - lo == 1)
        return bits;
    const unsigned mid = lo + (hi - lo) / 2;
    const unsigned level_bit = getBit(pos, floorLog2(hi - lo - 1));
    if (way < mid) {
        bits = setBit(bits, node, 1 - level_bit);
        return setPositionRec(bits, 2 * node + 1, lo, mid, way, pos);
    }
    bits = setBit(bits, node, level_bit);
    return setPositionRec(bits, 2 * node + 2, mid, hi, way, pos);
}

} // namespace

PlruTreeOracle::PlruTreeOracle(uint64_t sets, unsigned ways, Ipv ipv)
    : ways_(ways), bits_(sets, 0), ipv_(std::move(ipv))
{
    if (!isPow2(ways_) || ways_ < 2 || ways_ > 64)
        fatal("PlruTreeOracle: ways must be a power of two in [2, 64]");
    if (ipv_.ways() != ways_)
        fatal("PlruTreeOracle: IPV arity mismatch");
}

unsigned
PlruTreeOracle::positionOf(uint64_t bits, unsigned ways, unsigned way)
{
    return positionRec(bits, 0, 0, ways, way);
}

uint64_t
PlruTreeOracle::withPosition(uint64_t bits, unsigned ways, unsigned way,
                             unsigned pos)
{
    return setPositionRec(bits, 0, 0, ways, way, pos);
}

unsigned
PlruTreeOracle::victim(uint64_t set) const
{
    // Deliberately not the production root-to-leaf walk: scan every
    // way for the one occupying the all-ones PLRU position.
    for (unsigned w = 0; w < ways_; ++w) {
        if (positionOf(bits_[set], ways_, w) == ways_ - 1)
            return w;
    }
    panic("PlruTreeOracle: no way occupies the PLRU position");
}

void
PlruTreeOracle::onInsert(uint64_t set, unsigned way)
{
    bits_[set] = withPosition(bits_[set], ways_, way, ipv_.insertion());
}

void
PlruTreeOracle::onHit(uint64_t set, unsigned way)
{
    const unsigned i = positionOf(bits_[set], ways_, way);
    bits_[set] = withPosition(bits_[set], ways_, way, ipv_.promotion(i));
}

void
PlruTreeOracle::onInvalidate(uint64_t set, unsigned way)
{
    bits_[set] = withPosition(bits_[set], ways_, way, ways_ - 1);
}

std::vector<unsigned>
PlruTreeOracle::positions(uint64_t set) const
{
    std::vector<unsigned> pos(ways_);
    for (unsigned w = 0; w < ways_; ++w)
        pos[w] = positionOf(bits_[set], ways_, w);
    return pos;
}

// ---------------------------------------------------------------------------
// DuelOracle

namespace
{

/** Re-derivation of clampLeaders: largest power of two leaving at
 *  least three quarters of the sets as followers, and at least 1. */
unsigned
clampLeadersRef(uint64_t sets, unsigned policies, unsigned requested)
{
    uint64_t cap = sets / (4 * static_cast<uint64_t>(policies));
    if (cap < 1)
        cap = 1;
    uint64_t want = std::min<uint64_t>(requested, cap);
    if (want < 1)
        want = 1;
    uint64_t l = 1;
    while (l * 2 <= want)
        l *= 2;
    return static_cast<unsigned>(l);
}

} // namespace

DuelOracle::DuelOracle(uint64_t sets, unsigned ways,
                       std::vector<Ipv> ipvs, unsigned leaders_per_policy,
                       unsigned counter_bits)
    : PlruTreeOracle(sets, ways, ipvs.at(0)), ipvs_(std::move(ipvs)),
      sets_(sets),
      leadersPerPolicy_(clampLeadersRef(
          sets, static_cast<unsigned>(ipvs_.size()), leaders_per_policy)),
      counterMax_((1u << counter_bits) - 1)
{
    const unsigned n = static_cast<unsigned>(ipvs_.size());
    if (n < 2 || !isPow2(n))
        fatal("DuelOracle: need a power-of-two vector count >= 2");
    // Tournament: level l has n >> (l+1) counters, all at midpoint.
    for (unsigned l = 0; (n >> (l + 1)) > 0; ++l) {
        counters_.emplace_back(n >> (l + 1),
                               (counterMax_ + 1) / 2);
    }
}

int
DuelOracle::owner(uint64_t set) const
{
    // Re-derive the documented mapping: constituency c = set / C with
    // C = sets / leaders, and policy p leads offset (5c + p) mod C.
    const uint64_t constituency = sets_ / leadersPerPolicy_;
    const uint64_t c = set / constituency;
    const uint64_t offset = set % constituency;
    for (unsigned p = 0; p < ipvs_.size(); ++p) {
        if ((5 * c + p) % constituency == offset)
            return static_cast<int>(p);
    }
    return -1;
}

unsigned
DuelOracle::winner() const
{
    unsigned idx = 0;
    for (size_t l = counters_.size(); l-- > 0;) {
        const bool prefer_b = counters_[l][idx] >= counterMax_ / 2 + 1;
        idx = idx * 2 + (prefer_b ? 1 : 0);
    }
    return idx;
}

const Ipv &
DuelOracle::ipvFor(uint64_t set) const
{
    const int p = owner(set);
    return ipvs_[p >= 0 ? static_cast<size_t>(p) : winner()];
}

void
DuelOracle::onMiss(uint64_t set, bool demand)
{
    if (!demand)
        return;
    const int p = owner(set);
    if (p < 0)
        return;
    // A leader miss walks the tournament: at each level the counter
    // for this policy's pair moves toward the sibling.
    for (size_t l = 0; l < counters_.size(); ++l) {
        unsigned &ctr = counters_[l][static_cast<unsigned>(p) >> (l + 1)];
        if (((static_cast<unsigned>(p) >> l) & 1) == 0) {
            if (ctr < counterMax_)
                ++ctr;
        } else if (ctr > 0) {
            --ctr;
        }
    }
}

void
DuelOracle::onInsert(uint64_t set, unsigned way)
{
    bits_[set] =
        withPosition(bits_[set], ways_, way, ipvFor(set).insertion());
}

void
DuelOracle::onHit(uint64_t set, unsigned way)
{
    const Ipv &ipv = ipvFor(set);
    const unsigned i = positionOf(bits_[set], ways_, way);
    bits_[set] = withPosition(bits_[set], ways_, way, ipv.promotion(i));
}

std::string
DuelOracle::auxState() const
{
    return std::to_string(winner());
}

} // namespace gippr::verify
