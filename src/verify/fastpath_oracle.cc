/**
 * @file
 * Lock-step fastpath oracle implementation.
 */

#include "verify/fastpath_oracle.hh"

#include <sstream>

#include "cache/replay.hh"
#include "core/dgippr.hh"
#include "core/giplr.hh"
#include "core/gippr.hh"
#include "core/plru.hh"
#include "policies/lru.hh"
#include "util/check.hh"

namespace gippr::verify
{

using fastpath::FastPolicyKind;
using fastpath::SoaCacheModel;

std::string
FastpathResult::toString() const
{
    std::ostringstream os;
    os << policy << " on " << stream << ": " << accesses << " accesses, "
       << comparisons << " comparisons, ";
    if (divergence)
        os << divergence->toString();
    else
        os << "no divergence";
    return os.str();
}

FastpathOracle::FastpathOracle(const fastpath::ReplaySpec &spec,
                               const CacheConfig &config)
    : spec_(spec), config_(config),
      scalar_(config, fastpath::makeScalarPolicy(spec, config)),
      model_(spec, config, SoaCacheModel::DuelMode::Live)
{
    GIPPR_CHECK(SoaCacheModel::supports(spec, config));
}

std::vector<unsigned>
FastpathOracle::scalarPositions(uint64_t set) const
{
    const ReplacementPolicy &p = scalar_.policy();
    const unsigned ways = config_.assoc;
    std::vector<unsigned> pos(ways);
    switch (spec_.kind) {
      case FastPolicyKind::Lru:
        for (unsigned w = 0; w < ways; ++w)
            pos[w] = dynamic_cast<const LruPolicy &>(p).position(set, w);
        break;
      case FastPolicyKind::Lip:
      case FastPolicyKind::Giplr:
        for (unsigned w = 0; w < ways; ++w)
            pos[w] =
                dynamic_cast<const GiplrPolicy &>(p).position(set, w);
        break;
      case FastPolicyKind::Plru:
        for (unsigned w = 0; w < ways; ++w)
            pos[w] =
                dynamic_cast<const PlruPolicy &>(p).tree(set).position(w);
        break;
      case FastPolicyKind::Gippr:
        for (unsigned w = 0; w < ways; ++w)
            pos[w] =
                dynamic_cast<const GipprPolicy &>(p).tree(set).position(
                    w);
        break;
      case FastPolicyKind::Dgippr:
        for (unsigned w = 0; w < ways; ++w)
            pos[w] =
                dynamic_cast<const DgipprPolicy &>(p).tree(set).position(
                    w);
        break;
    }
    return pos;
}

std::string
FastpathOracle::dumpBoth(uint64_t set) const
{
    std::ostringstream os;
    os << "scalar positions [";
    for (unsigned p : scalarPositions(set))
        os << ' ' << p;
    os << " ] blocks [";
    for (unsigned w = 0; w < config_.assoc; ++w) {
        auto block = scalar_.blockAt(set, w);
        if (block)
            os << " 0x" << std::hex << *block << std::dec;
        else
            os << " -";
    }
    os << " ]";
    if (spec_.kind == FastPolicyKind::Dgippr) {
        os << " winner="
           << dynamic_cast<const DgipprPolicy &>(scalar_.policy())
                  .currentWinner();
    }
    os << " | fast " << model_.dumpSet(set);
    return os.str();
}

void
FastpathOracle::record(FastpathResult &result, uint64_t index,
                       uint64_t set, const std::string &kind,
                       const std::string &detail)
{
    if (result.divergence)
        return;
    Divergence d;
    d.eventIndex = index;
    d.set = set;
    d.kind = kind;
    d.detail = detail;
    result.divergence = std::move(d);
}

void
FastpathOracle::compareState(FastpathResult &result, uint64_t index,
                             uint64_t set)
{
    if (result.divergence)
        return;
    ++result.comparisons;
    const std::vector<unsigned> want = scalarPositions(set);
    const std::vector<unsigned> got = model_.positionsOf(set);
    if (got != want) {
        record(result, index, set, "positions", dumpBoth(set));
        return;
    }
    // Valid bits must agree way-for-way; tag contents are already
    // pinned by the per-access hit/way comparisons.
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (scalar_.blockAt(set, w).has_value() !=
            model_.validAt(set, w)) {
            record(result, index, set, "valid", dumpBoth(set));
            return;
        }
    }
    if (spec_.kind == FastPolicyKind::Dgippr) {
        const unsigned want_winner =
            dynamic_cast<const DgipprPolicy &>(scalar_.policy())
                .currentWinner();
        if (want_winner != model_.winner())
            record(result, index, set, "winner", dumpBoth(set));
    }
}

FastpathResult
FastpathOracle::run(const Trace &trace, const std::string &stream,
                    uint64_t state_check_every)
{
    FastpathResult result;
    result.policy = spec_.name();
    result.stream = stream;

    for (const MemRecord &rec : trace) {
        const AccessType type = recordType(rec);
        const uint64_t set = config_.setIndex(rec.addr);
        const AccessResult want = scalar_.access(rec.addr, type, rec.pc);
        const SoaCacheModel::Step got =
            model_.accessAddr(rec.addr, type);
        const uint64_t index = accessesSoFar_++;
        ++result.accesses;

        if (!result.divergence) {
            ++result.comparisons;
            if (want.hit != got.hit) {
                record(result, index, set,
                       got.hit ? "fast-hit-scalar-miss"
                               : "fast-miss-scalar-hit",
                       dumpBoth(set));
            } else if (!want.bypassed && want.way != got.way) {
                std::ostringstream os;
                os << "scalar way " << want.way << " vs fast way "
                   << got.way << "; " << dumpBoth(set);
                record(result, index, set, "way", os.str());
            } else if (want.evictedBlock.has_value() != got.evicted) {
                record(result, index, set, "evicted", dumpBoth(set));
            } else if (got.evicted &&
                       (*want.evictedBlock !=
                            ((got.evictedTag << config_.setShift()) |
                             set) ||
                        want.evictedDirty != got.evictedDirty)) {
                std::ostringstream os;
                os << "scalar evicts 0x" << std::hex
                   << *want.evictedBlock
                   << (want.evictedDirty ? " dirty" : " clean")
                   << " vs fast 0x"
                   << ((got.evictedTag << config_.setShift()) | set)
                   << std::dec << (got.evictedDirty ? " dirty" : " clean")
                   << "; " << dumpBoth(set);
                record(result, index, set, "victim", os.str());
            }
        }

        if (state_check_every != 0 &&
            (index + 1) % state_check_every == 0)
            compareState(result, index, set);
    }

    // Full final sweep: every set's state plus the counter banks.
    if (!result.divergence) {
        for (uint64_t s = 0; s < model_.sets(); ++s)
            compareState(result,
                         accessesSoFar_ ? accessesSoFar_ - 1 : 0, s);
    }
    if (!result.divergence) {
        const CacheStats &sc = scalar_.stats();
        const fastpath::CounterBank &fb = model_.stats().total;
        const bool same =
            sc.accesses == fb.accesses && sc.hits == fb.hits &&
            sc.misses == fb.misses && sc.evictions == fb.evictions &&
            sc.writebacks == fb.writebacks &&
            sc.demandAccesses == fb.demandAccesses &&
            sc.demandMisses == fb.demandMisses && sc.bypasses == 0;
        if (!same) {
            std::ostringstream os;
            os << "scalar {acc " << sc.accesses << " hit " << sc.hits
               << " miss " << sc.misses << " evict " << sc.evictions
               << " wb " << sc.writebacks << " dacc "
               << sc.demandAccesses << " dmiss " << sc.demandMisses
               << " byp " << sc.bypasses << "} vs fast "
               << model_.stats().toString();
            record(result, accessesSoFar_ ? accessesSoFar_ - 1 : 0, 0,
                   "stats", os.str());
        }
    }
    return result;
}

} // namespace gippr::verify
