/**
 * @file
 * Exhaustive PLRU model-checker implementation.
 */

#include "verify/model_check.hh"

#include <sstream>

#include "core/plru_tree.hh"
#include "util/bitops.hh"
#include "util/check.hh"
#include "util/log.hh"

namespace gippr::verify
{

namespace
{

/** Load a packed bit assignment into a tree. */
void
loadState(PlruTree &tree, uint64_t state)
{
    for (unsigned node = 0; node < tree.numBits(); ++node)
        tree.setBit(node, getBit(state, node) != 0);
}

/** Pack a tree's bit assignment into an integer (LSB = node 0). */
uint64_t
packState(const PlruTree &tree)
{
    uint64_t state = 0;
    for (unsigned node = 0; node < tree.numBits(); ++node)
        state = setBit(state, node, tree.bit(node) ? 1 : 0);
    return state;
}

/**
 * Independent PMRU derivation: descend from the root picking, at each
 * node, the child whose position contribution is 0 — the right child
 * when the bit is 0, the left child when it is 1.  Deliberately a
 * different code path from PlruTree::position/wayAtPosition.
 */
unsigned
walkPmru(const PlruTree &tree)
{
    const unsigned ways = tree.ways();
    unsigned node = 0;
    while (node < ways - 1)
        node = tree.bit(node) ? 2 * node + 1 : 2 * node + 2;
    return node - (ways - 1);
}

/** Nodes on @p way's leaf-to-root path, as a packed mask. */
uint64_t
pathMask(unsigned ways, unsigned way)
{
    uint64_t mask = 0;
    unsigned node = ways - 1 + way;
    while (node != 0) {
        node = (node - 1) / 2;
        mask = setBit(mask, node, 1);
    }
    return mask;
}

/** Collector that caps stored failures but keeps counting checks. */
class Collector
{
  public:
    Collector(ModelCheckResult &result, const ModelCheckOptions &opts)
        : result_(result), opts_(opts)
    {
    }

    /** Record one invariant evaluation; returns @p ok for chaining. */
    bool
    expect(bool ok, const std::string &invariant, uint64_t state,
           const std::string &detail)
    {
        if (ok) {
            ++result_.checksPassed;
        } else if (result_.failures.size() < opts_.maxFailures) {
            result_.failures.push_back({invariant, state, detail});
        }
        return ok;
    }

    /** True once the failure cap is hit (enumeration can stop). */
    bool
    saturated() const
    {
        return result_.failures.size() >= opts_.maxFailures;
    }

  private:
    ModelCheckResult &result_;
    const ModelCheckOptions &opts_;
};

/** "way w, target x" prefix for transition failure details. */
std::string
transitionLabel(unsigned way, unsigned target)
{
    return "way " + std::to_string(way) + ", target " +
           std::to_string(target);
}

/** Check the static (per-state) invariants 1 and 2. */
void
checkStateInvariants(const PlruTree &tree, uint64_t state, Collector &c)
{
    const unsigned ways = tree.ways();

    // Invariant 1: positions form a permutation of 0..k-1, and
    // wayAtPosition inverts position.
    std::vector<bool> seen(ways, false);
    for (unsigned w = 0; w < ways; ++w) {
        const unsigned x = tree.position(w);
        if (!c.expect(x < ways, "permutation", state,
                      "position(" + std::to_string(w) + ") = " +
                          std::to_string(x) + " out of range")) {
            continue;
        }
        c.expect(!seen[x], "permutation", state,
                 "position " + std::to_string(x) + " occupied twice");
        seen[x] = true;
        c.expect(tree.wayAtPosition(x) == w, "inverse", state,
                 "wayAtPosition(" + std::to_string(x) + ") != " +
                     std::to_string(w));
    }

    // Invariant 2: the PLRU victim occupies the all-ones position k-1
    // and the independently derived PMRU block occupies position 0.
    const unsigned plru = tree.findPlru();
    c.expect(tree.position(plru) == ways - 1, "plru-victim", state,
             "findPlru() = " + std::to_string(plru) + " at position " +
                 std::to_string(tree.position(plru)) +
                 ", expected position " + std::to_string(ways - 1));
    c.expect(tree.wayAtPosition(ways - 1) == plru, "plru-victim", state,
             "wayAtPosition(k-1) != findPlru()");
    const unsigned pmru = walkPmru(tree);
    c.expect(tree.position(pmru) == 0, "pmru", state,
             "PMRU walk reached way " + std::to_string(pmru) +
                 " at position " + std::to_string(tree.position(pmru)));
}

/** Check the transition invariants 3 and 4 from @p state. */
void
checkTransitions(unsigned ways, uint64_t state, PlruTree &scratch,
                 ModelCheckResult &result, Collector &c)
{
    const unsigned log_ways = floorLog2(ways);
    for (unsigned w = 0; w < ways && !c.saturated(); ++w) {
        for (unsigned x = 0; x < ways; ++x) {
            loadState(scratch, state);
            scratch.setPosition(w, x);
            ++result.transitionsChecked;

            // Invariant 3a: round trip.
            c.expect(scratch.position(w) == x, "round-trip", state,
                     transitionLabel(w, x) + ": landed at position " +
                         std::to_string(scratch.position(w)));

            // Invariant 3b: permutation preserved.
            uint64_t occupied = 0;
            for (unsigned v = 0; v < ways; ++v)
                occupied = setBit(occupied, scratch.position(v), 1);
            c.expect(occupied == lowMask(ways), "closure", state,
                     transitionLabel(w, x) +
                         ": positions no longer a permutation");

            // Invariant 3c: at most log2(k) bits touched, all on the
            // way's leaf-to-root path.
            const uint64_t diff = packState(scratch) ^ state;
            c.expect(popcount64(diff) <= log_ways, "touched-bits", state,
                     transitionLabel(w, x) + ": " +
                         std::to_string(popcount64(diff)) +
                         " bits changed, bound is " +
                         std::to_string(log_ways));
            c.expect((diff & ~pathMask(ways, w)) == 0, "touched-bits",
                     state,
                     transitionLabel(w, x) +
                         ": changed a bit off the leaf-to-root path");
        }

        // Invariant 4: promoteMru == setPosition(way, 0).
        loadState(scratch, state);
        scratch.promoteMru(w);
        ++result.transitionsChecked;
        const uint64_t promoted = packState(scratch);
        loadState(scratch, state);
        scratch.setPosition(w, 0);
        c.expect(promoted == packState(scratch), "promote-mru", state,
                 "way " + std::to_string(w) +
                     ": promoteMru != setPosition(way, 0)");
    }
}

} // namespace

std::string
ModelCheckFailure::toString() const
{
    std::ostringstream os;
    os << invariant << " violated in state 0x" << std::hex << state
       << std::dec << ": " << detail;
    return os.str();
}

ModelCheckResult
modelCheckPlruTree(unsigned ways, const ModelCheckOptions &opts)
{
    if (ways < 2 || ways > 64 || !isPow2(ways))
        fatal("modelCheckPlruTree: ways must be a power of two in [2, 64]");

    ModelCheckResult result;
    result.ways = ways;
    Collector c(result, opts);

    PlruTree tree(ways);
    PlruTree scratch(ways);
    const uint64_t num_states = uint64_t{1} << (ways - 1);
    for (uint64_t state = 0; state < num_states && !c.saturated();
         ++state) {
        loadState(tree, state);
        ++result.statesChecked;
        GIPPR_DCHECK(packState(tree) == state);
        checkStateInvariants(tree, state, c);
        checkTransitions(ways, state, scratch, result, c);
    }
    return result;
}

std::vector<ModelCheckResult>
modelCheckSweep(const std::vector<unsigned> &ways_list,
                const ModelCheckOptions &opts)
{
    std::vector<ModelCheckResult> results;
    results.reserve(ways_list.size());
    for (unsigned ways : ways_list)
        results.push_back(modelCheckPlruTree(ways, opts));
    return results;
}

} // namespace gippr::verify
