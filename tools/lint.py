#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Run from anywhere inside the repo:

    python3 tools/lint.py [paths...]

With no paths, lints every .hh/.cc under src/ (plus tests/, bench/ and
examples/ for the rules scoped to them).  Exit status is nonzero if any
rule fires, so CI gates on it directly.

Rules:

  header-guard   src/**/*.hh must open a guard named
                 GIPPR_<DIR>_<FILE>_HH_ (e.g. src/core/plru_tree.hh
                 guards GIPPR_CORE_PLRU_TREE_HH_) and close it with a
                 matching "#endif // <guard>" comment.

  determinism    rand()/srand()/time(nullptr) are banned outside
                 src/util/rng.* — all randomness flows through the
                 seeded Rng so experiments replay bit-identically.
                 Also banned: std::chrono::system_clock and
                 clock_gettime() (wall-clock reads that leak into
                 results; steady_clock is fine for durations), and
                 getenv() outside the allowlisted config-knob sites —
                 environment-derived values must never feed seeds or
                 results.  (src/telemetry/report.cc is allowlisted:
                 run timestamps are wall-clock by design and tests pin
                 them via setTimestamp.)

  no-cout        std::cout/std::cerr are banned in src/ — library code
                 reports through util/log.hh or returns data.
                 examples/ and bench/ are user-facing and exempt.

  doxygen-file   every src/**/*.{hh,cc} starts with a Doxygen comment
                 containing @file.

  no-bare-assert <cassert>'s assert() is banned in src/ — invariants
                 use GIPPR_CHECK/GIPPR_DCHECK (util/check.hh) so the
                 sanitizer CI jobs can force them on in NDEBUG builds.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

DETERMINISM_ALLOW = {
    "src/util/rng.hh",
    "src/util/rng.cc",
    "src/telemetry/report.cc",  # wall-clock run timestamps
}

# getenv is legal only at these audited config-knob sites: they steer
# pacing, batching, backend selection, and fault injection — never a
# seed, an ordering, or a reported result.
GETENV_ALLOW = {
    "src/trace/trace_io.cc",        # GIPPR_IO_RETRY_BASE_MS pacing
    "src/ga/fitness.cc",            # GIPPR_GA_BATCH / GIPPR_GA_MEMO
    "src/robust/fault_inject.cc",   # GIPPR_FAULT_INJECT test hook
    "src/robust/atomic_io.cc",      # GIPPR_IO_RETRY_BASE_MS pacing
    "src/sim/fastpath/engine.cc",   # GIPPR_REPLAY_BACKEND / _SHARDS
}

DETERMINISM_RE = re.compile(
    r"(?<![\w:])(?:rand|srand)\s*\(|time\s*\(\s*(?:nullptr|NULL|0)\s*\)")
WALLCLOCK_RE = re.compile(r"system_clock\b|\bclock_gettime\s*\(")
GETENV_RE = re.compile(r"\bgetenv\s*\(")
COUT_RE = re.compile(r"std::c(?:out|err)\b")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")


# Fixture files (tests/lint_fixtures/) physically live outside src/;
# this directive makes them lint as if they were at the given path so
# the src-scoped rules apply.  Must appear in the first comment block.
AS_DIRECTIVE = re.compile(r"//\s*gippr-lint:\s*as=(\S+)")


def relative(path):
    return path.resolve().relative_to(REPO).as_posix()


def expected_guard(rel):
    # src/core/plru_tree.hh -> GIPPR_CORE_PLRU_TREE_HH_
    parts = pathlib.PurePosixPath(rel).parts[1:]  # drop "src"
    stem = "_".join(parts)
    stem = re.sub(r"\.hh$", "", stem)
    return "GIPPR_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_HH_"


def strip_comments(text):
    """Drop // and /* */ comments and string literals (keeps newlines)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.extend(ch if ch == "\n" else " " for ch in text[i:j])
            i = j
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Linter:
    def __init__(self):
        self.errors = []

    def error(self, rel, line, rule, msg):
        self.errors.append(f"{rel}:{line}: [{rule}] {msg}")

    def lint(self, path):
        rel = relative(path)
        text = path.read_text()
        m = AS_DIRECTIVE.search(text)
        if m:
            rel = m.group(1)
        in_src = rel.startswith("src/")
        code = strip_comments(text)

        if in_src and rel.endswith(".hh"):
            self.check_guard(rel, text)
        if in_src:
            self.check_doxygen(rel, text)
            self.check_no_cout(rel, code)
            self.check_no_assert(rel, code)
        self.check_determinism(rel, code)

    def check_guard(self, rel, text):
        guard = expected_guard(rel)
        want = [f"#ifndef {guard}", f"#define {guard}"]
        lines = text.split("\n")
        directives = [l.strip() for l in lines
                      if l.strip().startswith(("#ifndef", "#define"))]
        if directives[:2] != want:
            self.error(rel, 1, "header-guard",
                       f"expected guard {guard}")
            return
        close = f"#endif // {guard}"
        tail = [l.strip() for l in lines if l.strip()]
        if not tail or tail[-1] != close:
            self.error(rel, len(lines), "header-guard",
                       f'file must end with "{close}"')

    def check_doxygen(self, rel, text):
        head = text[:400]
        if not (head.lstrip().startswith("/**") and "@file" in head):
            self.error(rel, 1, "doxygen-file",
                       "missing leading /** ... @file ... */ comment")

    def check_determinism(self, rel, code):
        if rel in DETERMINISM_ALLOW or not rel.startswith("src/"):
            return
        for m in DETERMINISM_RE.finditer(code):
            self.error(rel, line_of(code, m.start()), "determinism",
                       "rand()/time(nullptr) outside src/util/rng; "
                       "use the seeded Rng")
        for m in WALLCLOCK_RE.finditer(code):
            self.error(rel, line_of(code, m.start()), "determinism",
                       "wall-clock read (system_clock/clock_gettime) "
                       "leaks into results; use steady_clock for "
                       "durations or go through telemetry")
        if rel not in GETENV_ALLOW:
            for m in GETENV_RE.finditer(code):
                self.error(rel, line_of(code, m.start()),
                           "determinism",
                           "getenv() outside the audited config-knob "
                           "allowlist; environment values must not "
                           "feed seeds or results")

    def check_no_cout(self, rel, code):
        for m in COUT_RE.finditer(code):
            self.error(rel, line_of(code, m.start()), "no-cout",
                       "std::cout/cerr in library code; use util/log.hh")

    def check_no_assert(self, rel, code):
        for m in ASSERT_RE.finditer(code):
            self.error(rel, line_of(code, m.start()), "no-bare-assert",
                       "bare assert(); use GIPPR_CHECK/GIPPR_DCHECK")


def collect(args):
    if args:
        return [pathlib.Path(a) for a in args]
    files = []
    for top in ("src",):
        files.extend(sorted((REPO / top).rglob("*.hh")))
        files.extend(sorted((REPO / top).rglob("*.cc")))
    return files


def main(argv):
    linter = Linter()
    for path in collect(argv[1:]):
        linter.lint(path)
    for err in linter.errors:
        print(err)
    if linter.errors:
        print(f"lint: {len(linter.errors)} error(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
