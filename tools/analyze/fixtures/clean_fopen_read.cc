// gippr-analyze: as=src/trace/fixture_fopen_read_clean.cc
//
// Clean twin of bad_fopen_write.cc: read-mode fopen is legal — only
// write paths must go through robust::writeFileAtomic.
#include <cstdio>

namespace gippr::trace {

int
peekMarker(const char *path) {
  FILE *f = std::fopen(path, "rb");  // read-only: fine
  if (f == nullptr)
    return -1;
  int c = std::fgetc(f);
  std::fclose(f);
  return c;
}

}  // namespace gippr::trace
