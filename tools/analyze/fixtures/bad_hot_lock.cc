// gippr-analyze: as=src/sim/fastpath/fixture_hot_lock.cc
// expect: hot-path-purity
//
// The GIPPR_HOT entry point looks clean, but a helper it calls takes
// a mutex — the violation is transitive, two hops from the root.
#include <cstdint>
#include <mutex>

#include "util/hot.hh"

namespace gippr::fastpath {

namespace {
std::mutex g_stats_mu;
uint64_t g_hits;
}  // namespace

void
bumpStats(uint64_t n) {
  std::lock_guard<std::mutex> lk(g_stats_mu);  // lock on hot path
  g_hits += n;
}

uint64_t
tagOf(uint64_t addr) {
  bumpStats(1);
  return addr >> 6;
}

GIPPR_HOT uint64_t
accessKernel(uint64_t addr) {
  return tagOf(addr);
}

}  // namespace gippr::fastpath
