// gippr-analyze: as=src/telemetry/fixture_ofstream.cc
// expect: atomic-io-only
//
// A raw std::ofstream writes the report in place: a crash mid-write
// leaves a torn file that the fault-injection sweep cannot see.
#include <fstream>
#include <string>

namespace gippr::telemetry {

void
dumpReport(const std::string &path, const std::string &body) {
  std::ofstream out(path);  // in-place write, torn on crash
  out << body;
}

}  // namespace gippr::telemetry
