// gippr-analyze: as=src/sim/fastpath/fixture_hot_alloc_clean.cc
//
// Clean twin of bad_hot_alloc.cc: fixed-size stack storage, no
// allocation anywhere on the hot path.
#include <cstdint>

#include "util/hot.hh"

namespace gippr::fastpath {

GIPPR_HOT uint64_t
accessKernel(uint64_t addr) {
  uint64_t scratch[4] = {0, 0, 0, 0};
  scratch[addr & 3] = addr >> 6;
  return scratch[addr & 3];
}

}  // namespace gippr::fastpath
