// gippr-analyze: as=src/core/fixture_unordered_iter.cc
// expect: determinism-order
//
// Range-for over a std::unordered_map in a result-affecting module:
// bucket order depends on libstdc++ version and insertion history,
// so any result folded from this loop differs across toolchains.
#include <cstdint>
#include <unordered_map>

namespace gippr {

uint64_t
sumHitCounters() {
  std::unordered_map<uint64_t, uint64_t> hits;
  hits[0x40] = 3;
  hits[0x80] = 5;
  uint64_t acc = 0;
  for (const auto &kv : hits) {
    acc = acc * 31 + kv.second;  // order-sensitive fold
  }
  return acc;
}

}  // namespace gippr
