// gippr-analyze: as=src/sim/fastpath/fixture_hot_throw_clean.cc
//
// Clean twin of bad_hot_throw.cc: the set index is masked into
// range — a branch-free guarantee, and GIPPR_DCHECK documents the
// precondition without generating code in release builds.
#include <cstdint>

#include "util/hot.hh"

#define GIPPR_DCHECK(expr) static_cast<void>(sizeof((expr) ? 1 : 0))

namespace gippr::fastpath {

uint64_t
checkedSet(uint64_t set, uint64_t num_sets) {
  GIPPR_DCHECK(set < num_sets);
  return set & (num_sets - 1);
}

GIPPR_HOT uint64_t
accessKernel(uint64_t addr, uint64_t num_sets) {
  return checkedSet((addr >> 6) & (num_sets - 1), num_sets);
}

}  // namespace gippr::fastpath
