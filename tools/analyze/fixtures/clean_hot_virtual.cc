// gippr-analyze: as=src/sim/fastpath/fixture_hot_virtual_clean.cc
//
// Clean twin of bad_hot_virtual.cc: the sink is a template
// parameter, so emit() is resolved statically and inlined — same
// flexibility, no vtable on the hot path.
#include <cstdint>

#include "util/hot.hh"

namespace gippr::fastpath {

struct CountingSink {
  uint64_t seen = 0;
  void emit(uint64_t) { seen += 1; }
};

template <typename SinkT>
GIPPR_HOT void
accessKernel(SinkT &sink, uint64_t addr) {
  sink.emit(addr >> 6);  // static call, inlined
}

template GIPPR_HOT void accessKernel<CountingSink>(CountingSink &,
                                                   uint64_t);

}  // namespace gippr::fastpath
