// gippr-analyze: as=src/ga/fixture_pointer_sort_clean.cc
//
// Clean twin of bad_pointer_sort.cc: the comparator orders by a
// stable field of the pointee, never by the pointer value.
#include <algorithm>
#include <vector>

namespace gippr {

struct Genome {
  double fitness;
  unsigned id;
};

void
rankPopulation(std::vector<Genome *> &pop) {
  std::sort(pop.begin(), pop.end(),
            [](const Genome *a, const Genome *b) {
              if (a->fitness != b->fitness)
                return a->fitness > b->fitness;
              return a->id < b->id;  // stable tie-break
            });
}

}  // namespace gippr
