// gippr-analyze: as=src/core/fixture_dcheck_increment_clean.cc
//
// Clean twin of bad_dcheck_increment.cc: the side effect is hoisted
// out; the macro argument is a pure comparison.
#include <cstdint>

#define GIPPR_DCHECK(expr) static_cast<void>(sizeof((expr) ? 1 : 0))

namespace gippr {

uint64_t
nextRecord(const uint64_t *stream, uint64_t &cursor, uint64_t n) {
  GIPPR_DCHECK(cursor < n);  // pure: identical in both builds
  cursor += 1;
  return stream[cursor];
}

}  // namespace gippr
