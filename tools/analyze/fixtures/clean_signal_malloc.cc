// gippr-analyze: as=src/robust/fixture_signal_malloc_clean.cc
//
// Clean twin of bad_signal_malloc.cc: the death note is a static
// buffer filled with pure arithmetic — the helper stays on the
// handler's call graph but touches no lock.
#include <csignal>

namespace gippr::robust {

namespace {
char g_death_note[2];
}  // namespace

void
formatDeathNote(int signo) {
  g_death_note[0] = static_cast<char>('0' + (signo % 10));
  g_death_note[1] = '\0';
}

extern "C" void
onShutdownSignal(int signo) {
  formatDeathNote(signo);
}

void
installHandlers() {
  signal(SIGINT, onShutdownSignal);
}

}  // namespace gippr::robust
