// gippr-analyze: as=src/ga/fixture_pointer_cmp.cc
// expect: determinism-order
//
// A comparator is supplied, but it compares the raw pointers
// themselves — exactly as address-dependent as no comparator.
#include <algorithm>
#include <vector>

namespace gippr {

struct Genome {
  double fitness;
};

void
rankPopulation(std::vector<Genome *> &pop) {
  std::sort(pop.begin(), pop.end(),
            [](const Genome *a, const Genome *b) {
              return a < b;  // pointer-value order!
            });
}

}  // namespace gippr
