// gippr-analyze: as=src/robust/fixture_signal_stdio_clean.cc
//
// Clean twin of bad_signal_stdio.cc: the handler uses only the raw
// write() syscall and _exit(), both async-signal-safe.
#include <csignal>
#include <unistd.h>

namespace gippr::robust {

extern "C" void
onShutdownSignal(int signo) {
  static const char msg[] = "shutting down\n";
  ::write(2, msg, sizeof(msg) - 1);
  _exit(128 + signo);
}

void
installHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = onShutdownSignal;
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace gippr::robust
