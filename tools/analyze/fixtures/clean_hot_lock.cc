// gippr-analyze: as=src/sim/fastpath/fixture_hot_lock_clean.cc
//
// Clean twin of bad_hot_lock.cc: the per-access counter is a plain
// integer owned by the caller; aggregation into any shared, locked
// structure happens outside the GIPPR_HOT call graph.
#include <cstdint>

#include "util/hot.hh"

namespace gippr::fastpath {

uint64_t
tagOf(uint64_t addr, uint64_t &hits) {
  hits += 1;
  return addr >> 6;
}

GIPPR_HOT uint64_t
accessKernel(uint64_t addr, uint64_t &hits) {
  return tagOf(addr, hits);
}

}  // namespace gippr::fastpath
