// gippr-analyze: as=src/core/fixture_unordered_iter_clean.cc
//
// Clean twin of bad_unordered_iter.cc: the unordered map serves
// point lookups only; the order-sensitive fold walks an ordered
// container that is populated alongside it.
#include <cstdint>
#include <map>
#include <unordered_map>

namespace gippr {

uint64_t
sumHitCounters() {
  std::unordered_map<uint64_t, uint64_t> hits;
  std::map<uint64_t, uint64_t> ordered;
  hits[0x40] = 3;
  ordered[0x40] = 3;
  hits[0x80] = 5;
  ordered[0x80] = 5;
  uint64_t acc = 0;
  for (const auto &kv : ordered) {
    acc = acc * 31 + kv.second;
  }
  return acc + hits.count(0x40);  // point lookup: fine
}

}  // namespace gippr
