// gippr-analyze: as=src/core/fixture_dcheck_mutate.cc
// expect: dcheck-side-effects
//
// The GIPPR_CHECK argument inserts into the set — release builds
// never perform the insert, so the dedup table silently diverges
// between build modes.
#include <cstdint>
#include <set>

#define GIPPR_CHECK(expr) static_cast<void>(sizeof((expr) ? 1 : 0))

namespace gippr {

void
recordOnce(std::set<uint64_t> &seen, uint64_t key) {
  GIPPR_CHECK(seen.insert(key).second);  // mutation compiled out
}

}  // namespace gippr
