// gippr-analyze: as=src/sim/fastpath/fixture_hot_io_clean.cc
//
// Clean twin of bad_hot_io.cc: the kernel records what happened in a
// counter struct; any printing happens outside the hot call graph.
#include <cstdint>

#include "util/hot.hh"

namespace gippr::fastpath {

struct Trace {
  uint64_t last_set = 0;
  uint64_t accesses = 0;
};

GIPPR_HOT uint64_t
accessKernel(uint64_t addr, Trace &trace) {
  trace.last_set = addr >> 6;
  trace.accesses += 1;
  return trace.last_set;
}

}  // namespace gippr::fastpath
