// gippr-analyze: as=src/robust/fixture_signal_malloc.cc
// expect: signal-safety
//
// The handler itself looks innocent, but the helper it calls
// allocates — malloc takes the heap lock, the classic
// checkpoint-corrupting signal deadlock.  The violation is one hop
// down the call graph.
#include <csignal>
#include <cstdlib>

namespace gippr::robust {

char *
formatDeathNote(int signo) {
  char *buf = static_cast<char *>(malloc(64));  // heap lock!
  buf[0] = static_cast<char>('0' + (signo % 10));
  buf[1] = '\0';
  return buf;
}

extern "C" void
onShutdownSignal(int signo) {
  formatDeathNote(signo);
}

void
installHandlers() {
  signal(SIGINT, onShutdownSignal);
}

}  // namespace gippr::robust
