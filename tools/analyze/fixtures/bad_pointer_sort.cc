// gippr-analyze: as=src/ga/fixture_pointer_sort.cc
// expect: determinism-order
//
// std::sort over a vector of raw pointers without a comparator
// orders by address — allocator layout and ASLR decide the result.
#include <algorithm>
#include <vector>

namespace gippr {

struct Genome {
  double fitness;
};

void
rankPopulation(std::vector<Genome *> &pop) {
  std::sort(pop.begin(), pop.end());  // address order!
}

}  // namespace gippr
