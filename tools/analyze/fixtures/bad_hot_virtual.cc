// gippr-analyze: as=src/sim/fastpath/fixture_hot_virtual.cc
// expect: hot-path-purity
//
// Virtual dispatch inside a GIPPR_HOT kernel: `emit` is only ever
// declared virtual, and the receiver is not `this`.
#include <cstdint>

#include "util/hot.hh"

namespace gippr::fastpath {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void emit(uint64_t addr) = 0;
};

GIPPR_HOT void
accessKernel(Sink &sink, uint64_t addr) {
  sink.emit(addr >> 6);  // vtable dispatch per access
}

}  // namespace gippr::fastpath
