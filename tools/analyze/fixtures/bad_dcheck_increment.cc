// gippr-analyze: as=src/core/fixture_dcheck_increment.cc
// expect: dcheck-side-effects
//
// The cursor advance lives inside the GIPPR_DCHECK argument: debug
// builds step the cursor, release builds (where the macro is a
// sizeof probe) do not — the two builds replay different streams.
#include <cstdint>

#define GIPPR_DCHECK(expr) static_cast<void>(sizeof((expr) ? 1 : 0))

namespace gippr {

uint64_t
nextRecord(const uint64_t *stream, uint64_t &cursor, uint64_t n) {
  GIPPR_DCHECK(cursor++ < n);  // side effect compiled out in release
  return stream[cursor];
}

}  // namespace gippr
