// gippr-analyze: as=src/sim/fastpath/fixture_hot_throw.cc
// expect: hot-path-purity
//
// A bounds helper reached from a GIPPR_HOT kernel throws: the
// violation is transitive, and unwinding machinery has no place on
// the per-access path.
#include <cstdint>
#include <stdexcept>

#include "util/hot.hh"

namespace gippr::fastpath {

uint64_t
checkedSet(uint64_t set, uint64_t num_sets) {
  if (set >= num_sets)
    throw std::out_of_range("set index");  // unwinding on hot path
  return set;
}

GIPPR_HOT uint64_t
accessKernel(uint64_t addr, uint64_t num_sets) {
  return checkedSet((addr >> 6) & (num_sets - 1), num_sets);
}

}  // namespace gippr::fastpath
