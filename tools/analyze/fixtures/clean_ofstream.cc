// gippr-analyze: as=src/telemetry/fixture_ofstream_clean.cc
//
// Clean twin of bad_ofstream.cc: the report goes through
// robust::writeFileAtomic (temp + fsync + rename + dir-fsync), so a
// crash leaves either the old file or the new one, never a mix.
#include <string>

#include "robust/atomic_io.hh"

namespace gippr::telemetry {

void
dumpReport(const std::string &path, const std::string &body) {
  robust::writeFileAtomic(path, body);
}

}  // namespace gippr::telemetry
