// gippr-analyze: as=src/sim/fastpath/fixture_hot_alloc.cc
// expect: hot-path-purity
//
// A GIPPR_HOT kernel that heap-allocates: constructs a std::vector
// local and grows it per access.
#include <cstdint>
#include <vector>

#include "util/hot.hh"

namespace gippr::fastpath {

GIPPR_HOT uint64_t
accessKernel(uint64_t addr) {
  std::vector<uint64_t> scratch;   // allocating local
  scratch.push_back(addr >> 6);    // grows on the hot path
  return scratch.back();
}

}  // namespace gippr::fastpath
