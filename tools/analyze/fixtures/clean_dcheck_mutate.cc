// gippr-analyze: as=src/core/fixture_dcheck_mutate_clean.cc
//
// Clean twin of bad_dcheck_mutate.cc: the insert runs
// unconditionally; only its (pure) result is asserted.
#include <cstdint>
#include <set>

#define GIPPR_CHECK(expr) static_cast<void>(sizeof((expr) ? 1 : 0))

namespace gippr {

void
recordOnce(std::set<uint64_t> &seen, uint64_t key) {
  const bool inserted = seen.insert(key).second;
  GIPPR_CHECK(inserted);  // pure: identical in both builds
}

}  // namespace gippr
