// gippr-analyze: as=src/trace/fixture_fopen_write.cc
// expect: atomic-io-only
//
// fopen() in append mode writes in place; a crash between the
// write and the implicit flush tears the log.
#include <cstdio>

namespace gippr::trace {

void
appendMarker(const char *path) {
  FILE *f = std::fopen(path, "ab");  // in-place append
  if (f != nullptr) {
    std::fputc('\n', f);
    std::fclose(f);
  }
}

}  // namespace gippr::trace
