// gippr-analyze: as=src/sim/fastpath/fixture_hot_io.cc
// expect: hot-path-purity
//
// Debug printf left inside a GIPPR_HOT kernel: stdio takes the
// stream lock and formats on every access.
#include <cstdint>
#include <cstdio>

#include "util/hot.hh"

namespace gippr::fastpath {

GIPPR_HOT uint64_t
accessKernel(uint64_t addr) {
  printf("access %llx\n", static_cast<unsigned long long>(addr));
  return addr >> 6;
}

}  // namespace gippr::fastpath
