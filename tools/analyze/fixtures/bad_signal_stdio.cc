// gippr-analyze: as=src/robust/fixture_signal_stdio.cc
// expect: signal-safety
//
// The installed SIGTERM handler calls fprintf — buffered stdio takes
// an internal lock, and a signal landing mid-printf deadlocks or
// corrupts the stream.
#include <csignal>
#include <cstdio>

namespace gippr::robust {

extern "C" void
onShutdownSignal(int signo) {
  fprintf(stderr, "caught signal %d\n", signo);  // not signal-safe
}

void
installHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = onShutdownSignal;
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace gippr::robust
