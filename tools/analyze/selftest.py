#!/usr/bin/env python3
"""gippr-analyze self-test: the checker must catch what it claims to.

Three assertions, run from ctest (analyze_selftest) and CI:

  1. every fixtures/bad_*.cc declares its expected check via an
     "// expect: <check-id>" directive, and running the analyzer on
     it exits nonzero with at least one finding from that check;
  2. every fixtures/clean_*.cc (the compliant twin of a bad snippet)
     produces zero findings;
  3. the real tree (default paths + baseline) is clean — the gate
     that CI enforces is the gate this test proves still works.

Fixtures carry "// gippr-analyze: as=<virtual-path>" directives so
path-scoped checks (determinism modules, atomic-io src/ scope) apply
to files that physically live under tools/.
"""

import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
RUN = HERE / "run.py"
FIXTURES = HERE / "fixtures"

_EXPECT = re.compile(r"//\s*expect:\s*(\S+)")


def analyze(args):
    proc = subprocess.run(
        [sys.executable, str(RUN)] + args,
        capture_output=True, text=True, cwd=str(REPO))
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []
    bad = sorted(FIXTURES.glob("bad_*.cc"))
    clean = sorted(FIXTURES.glob("clean_*.cc"))
    if len(bad) < 10:
        failures.append(f"only {len(bad)} bad fixtures; need >= 10")

    for path in bad:
        m = _EXPECT.search(path.read_text())
        if not m:
            failures.append(f"{path.name}: missing '// expect:' "
                            f"directive")
            continue
        expected = m.group(1)
        rc, out = analyze(["--fixture", str(path)])
        if rc == 0:
            failures.append(f"{path.name}: expected a "
                            f"[{expected}] finding, got a clean run")
        elif f"[{expected}]" not in out:
            failures.append(f"{path.name}: exited {rc} but no "
                            f"[{expected}] finding:\n{out}")
        else:
            print(f"ok   {path.name} -> {expected}")

    for path in clean:
        rc, out = analyze(["--fixture", str(path)])
        if rc != 0:
            failures.append(f"{path.name}: clean twin should pass "
                            f"but exited {rc}:\n{out}")
        else:
            print(f"ok   {path.name} -> clean")

    rc, out = analyze([])
    if rc != 0:
        failures.append(f"tree run should be clean (with baseline) "
                        f"but exited {rc}:\n{out}")
    else:
        print("ok   tree run clean (baseline applied)")

    if failures:
        print(f"\nanalyze selftest: {len(failures)} failure(s)")
        for f in failures:
            print(f"FAIL {f}")
        return 1
    print(f"\nanalyze selftest: {len(bad)} bad + {len(clean)} clean "
          f"fixtures + tree run — all ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
