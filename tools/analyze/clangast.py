"""Optional libclang extraction backend for gippr-analyze.

When the `clang` Python bindings and a loadable libclang are present
(CI pip-installs `libclang`; the default container image does not
ship it), this backend replaces the built-in recognizer's function
and call extraction with real AST facts from compile_commands.json:
exact function extents, semantic parents, reference-resolved call
sites, and is_virtual_method().  Bodies are still re-lexed with the
shared tokenizer so every check consumes the identical Model either
way.

Everything here is defensive: any import, index-creation, or parse
failure raises EngineUnavailable and run.py falls back to the
built-in engine with a note — the gate never depends on libclang
being installed or healthy.
"""

import json
import pathlib

from . import model as M


class EngineUnavailable(RuntimeError):
    pass


def _load_cindex():
    try:
        from clang import cindex
    except ImportError as exc:
        raise EngineUnavailable(f"clang.cindex not importable: {exc}")
    try:
        index = cindex.Index.create()
    except Exception as exc:  # loading libclang.so can fail many ways
        raise EngineUnavailable(f"libclang not loadable: {exc}")
    return cindex, index


def _compile_args(compdb_dir, path, cindex):
    """Compiler args for @p path from compile_commands.json, falling
    back to a generic C++20 invocation with the repo's include root."""
    repo = pathlib.Path(__file__).resolve().parent.parent.parent
    fallback = ["-x", "c++", "-std=c++20", f"-I{repo / 'src'}"]
    db_path = pathlib.Path(compdb_dir) / "compile_commands.json"
    if not db_path.exists():
        return fallback
    try:
        db = cindex.CompilationDatabase.fromDirectory(str(compdb_dir))
        cmds = db.getCompileCommands(str(path))
        if not cmds:
            return fallback
        args = list(cmds[0].arguments)[1:]  # drop the compiler
        # Strip output/input tokens libclang chokes on.
        out = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == str(path) or a.endswith(pathlib.Path(path).name):
                continue
            out.append(a)
        return out
    except Exception:
        return fallback


def _body_tokens(cursor):
    """Re-lex the cursor's extent with the shared tokenizer."""
    ext = cursor.extent
    try:
        text = pathlib.Path(str(ext.start.file)).read_text(
            errors="replace")
    except (OSError, TypeError):
        return ()
    snippet = text[ext.start.offset:ext.end.offset]
    toks = M.tokenize(snippet)
    # Fix up line numbers to absolute positions.
    base = ext.start.line - 1
    return tuple(M.Token(t.kind, t.text, t.line + base) for t in toks)


def _calls_under(cursor, cindex):
    calls = []
    for c in cursor.walk_preorder():
        if c.kind != cindex.CursorKind.CALL_EXPR:
            continue
        ref = c.referenced
        name = ref.spelling if ref is not None else c.spelling
        if not name:
            continue
        qualifier = ""
        receiver = "free"
        if ref is not None and ref.semantic_parent is not None \
                and ref.semantic_parent.kind in (
                    cindex.CursorKind.CLASS_DECL,
                    cindex.CursorKind.STRUCT_DECL,
                    cindex.CursorKind.CLASS_TEMPLATE):
            qualifier = ref.semantic_parent.spelling
            receiver = "member"
        calls.append(M.CallSite(name, qualifier, receiver,
                                c.location.line))
    return calls


_FUNC_KINDS = None


def build_model(paths, virtual_paths, compdb_dir):
    cindex, index = _load_cindex()
    func_kinds = {
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE,
    }
    model = M.Model()
    for path in paths:
        vpath = (virtual_paths or {}).get(str(path)) or str(path)
        sf = M.SourceFile(path=vpath)
        try:
            text = pathlib.Path(path).read_text(errors="replace")
            sf.tokens = M.tokenize(text)
            tu = index.parse(str(path),
                             args=_compile_args(compdb_dir, path,
                                                cindex))
        except Exception as exc:
            raise EngineUnavailable(f"parse failed for {path}: {exc}")
        this_file = str(pathlib.Path(path).resolve())
        for c in tu.cursor.walk_preorder():
            if c.kind not in func_kinds:
                continue
            loc = c.location
            if loc.file is None \
                    or str(pathlib.Path(str(loc.file)).resolve()) \
                    != this_file:
                continue
            cls = ""
            parent = c.semantic_parent
            if parent is not None and parent.kind in (
                    cindex.CursorKind.CLASS_DECL,
                    cindex.CursorKind.STRUCT_DECL,
                    cindex.CursorKind.CLASS_TEMPLATE):
                cls = parent.spelling
            toks = _body_tokens(c)
            head, body = toks, ()
            if c.is_definition():
                for i, t in enumerate(toks):
                    if t.text == "{":
                        head, body = toks[:i], toks[i:]
                        break
            virtual = False
            try:
                virtual = c.is_virtual_method()
            except Exception:
                pass
            sf.functions.append(M.Function(
                name=c.spelling,
                cls=cls,
                file=vpath,
                line=loc.line,
                head=head,
                body=body,
                calls=tuple(_calls_under(c, cindex))
                if c.is_definition() else (),
                hot=any(t.text == "GIPPR_HOT" for t in head),
                virtual=virtual,
                has_body=c.is_definition() and bool(body),
            ))
        model.files[vpath] = sf
    return model
