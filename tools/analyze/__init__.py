"""gippr-analyze: semantic invariant checks (see run.py)."""
