#!/usr/bin/env python3
"""gippr-analyze: semantic invariant checks for the gippr repo.

Layer three of the static-analysis gate (tools/lint.py regexes ->
clang-tidy -> gippr-analyze).  Five checks encode the invariants the
repo's credibility rests on — see the modules under checks/ for the
full rationale of each:

  determinism-order     no hash-order or pointer-order leaks in
                        result-affecting modules
  hot-path-purity       GIPPR_HOT kernels transitively allocation-,
                        lock-, exception-, virtual- and I/O-free
  signal-safety         shutdown handler reaches only
                        async-signal-safe functions
  atomic-io-only        persistent writes only via writeFileAtomic
  dcheck-side-effects   pure GIPPR_CHECK/GIPPR_DCHECK arguments

Usage:

    python3 tools/analyze/run.py [paths...]
        Analyze the tree (default: src/**/*.{hh,cc}).  Exit 1 on any
        finding not covered by baseline.json.

    python3 tools/analyze/run.py --fixture FILE [FILE...]
        Analyze fixture files, honoring their "// gippr-analyze:
        as=<virtual-path>" directive so scoped checks apply.  No
        baseline.  Used by selftest.py.

Engines: --engine builtin is the dependency-free lexer backend and
the default gate; --engine clang uses libclang (pip install libclang)
for sharper extraction over compile_commands.json and is run as an
advisory cross-check in CI; --engine auto prefers clang when
importable.  Both feed the same model to the same checks.
"""

import argparse
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from analyze import model as M  # noqa: E402
from analyze import checks  # noqa: E402

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
BASELINE = pathlib.Path(__file__).resolve().parent / "baseline.json"

_DIRECTIVE = re.compile(r"//\s*gippr-analyze:\s*as=(\S+)")


def default_paths():
    files = []
    files.extend(sorted((REPO / "src").rglob("*.hh")))
    files.extend(sorted((REPO / "src").rglob("*.cc")))
    return files


def virtual_path_of(path):
    """Repo-relative path, or the fixture's as= directive."""
    p = pathlib.Path(path).resolve()
    try:
        text = p.read_text(errors="replace")
    except OSError:
        text = ""
    m = _DIRECTIVE.search(text)
    if m:
        return m.group(1)
    try:
        return p.relative_to(REPO).as_posix()
    except ValueError:
        return p.name


def load_baseline(path):
    if not path.exists():
        return []
    entries = json.loads(path.read_text())
    for e in entries:
        for key in ("check", "file", "contains", "justification"):
            if key not in e:
                raise SystemExit(
                    f"baseline entry missing '{key}': {e}")
    return entries


def apply_baseline(findings, entries):
    kept, suppressed = [], []
    used = [0] * len(entries)
    for f in findings:
        for i, e in enumerate(entries):
            if e["check"] == f.check and e["file"] == f.file \
                    and e["contains"] in f.message:
                used[i] += 1
                suppressed.append(f)
                break
        else:
            kept.append(f)
    unused = [entries[i] for i, u in enumerate(used) if u == 0]
    return kept, suppressed, unused


def build_model(paths, engine, compdb):
    vpaths = {str(p): virtual_path_of(p) for p in paths}
    if engine in ("clang", "auto"):
        try:
            from analyze import clangast
            return clangast.build_model(paths, vpaths, compdb), "clang"
        except clangast.EngineUnavailable as exc:
            if engine == "clang":
                raise SystemExit(f"libclang engine unavailable: {exc}")
            print(f"note: libclang unavailable ({exc}); "
                  f"using builtin engine", file=sys.stderr)
        except ImportError as exc:
            if engine == "clang":
                raise SystemExit(f"libclang engine unavailable: {exc}")
    return M.build_model(paths, vpaths), "builtin"


def main(argv=None):
    ap = argparse.ArgumentParser(prog="gippr-analyze")
    ap.add_argument("paths", nargs="*", help="files to analyze")
    ap.add_argument("--engine", choices=("auto", "builtin", "clang"),
                    default="builtin")
    ap.add_argument("--compdb", default=str(REPO / "build"),
                    help="directory holding compile_commands.json "
                         "(clang engine)")
    ap.add_argument("--fixture", action="store_true",
                    help="fixture mode: honor as= directives, skip "
                         "the baseline and the hot-coverage gate")
    ap.add_argument("--no-baseline", action="store_true")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--check", action="append", default=None,
                    help="run only this check id (repeatable)")
    args = ap.parse_args(argv)

    if args.list_checks:
        for mod in checks.ALL_CHECKS:
            print(f"{mod.CHECK_ID:22s} {mod.DESCRIPTION}")
        return 0

    paths = [pathlib.Path(p) for p in args.paths] or default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise SystemExit(f"no such file: {missing[0]}")

    model, engine = build_model(paths, args.engine, args.compdb)

    config = {
        # The hot kernels must stay annotated: a tree with zero
        # GIPPR_HOT functions means the invariant silently lapsed.
        "require_hot": not args.fixture and not args.paths,
    }
    findings = []
    for mod in checks.ALL_CHECKS:
        if args.check and mod.CHECK_ID not in args.check:
            continue
        findings.extend(mod.run(model, config))
    findings.sort(key=lambda f: (f.file, f.line, f.check))

    suppressed, unused = [], []
    if not (args.fixture or args.no_baseline):
        entries = load_baseline(BASELINE)
        findings, suppressed, unused = apply_baseline(findings, entries)

    for f in findings:
        print(f.render())
    for e in unused:
        print(f"warning: unused baseline entry "
              f"{e['check']}:{e['file']} ({e['contains']!r})",
              file=sys.stderr)
    status = "FAIL" if findings else "clean"
    print(f"gippr-analyze [{engine}]: {len(findings)} finding(s), "
          f"{len(suppressed)} baselined — {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
