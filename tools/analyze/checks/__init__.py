"""Check registry for gippr-analyze.

Each check module exposes CHECK_ID, a one-line DESCRIPTION, and
run(model, config) -> list[Finding].  run.py imports ALL_CHECKS and
filters findings through the baseline.
"""

import dataclasses

from . import atomic_io
from . import dcheck_side_effects
from . import determinism_order
from . import hot_path_purity
from . import signal_safety


@dataclasses.dataclass(frozen=True)
class Finding:
    check: str
    file: str
    line: int
    message: str

    def render(self):
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"


ALL_CHECKS = [
    determinism_order,
    hot_path_purity,
    signal_safety,
    atomic_io,
    dcheck_side_effects,
]
