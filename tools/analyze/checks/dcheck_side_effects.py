"""dcheck-side-effects: check-macro arguments must be pure.

GIPPR_CHECK / GIPPR_DCHECK compile to `sizeof` probes in release
builds (util/check.hh): the condition is parsed but never evaluated.
Any side effect inside the argument therefore runs in debug builds
and vanishes in release builds — the exact class of heisenbug the
deterministic-replay gates cannot localize, because the two builds
legitimately diverge.  Flagged inside the macro argument:

  * assignment and compound assignment (= += -= *= /= %= &= |= ^=
    <<= >>=) at any nesting depth — `==`-family comparisons are fine;
  * increment / decrement (++ / --);
  * calls to known-mutating members (push_back, insert, erase, clear,
    reset, pop_back, emplace, resize, ...).
"""

from . import common

CHECK_ID = "dcheck-side-effects"
DESCRIPTION = ("side effects inside GIPPR_CHECK/GIPPR_DCHECK "
               "arguments (compiled out in release)")

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}
_MUTATING_MEMBERS = {
    "push_back", "pop_back", "emplace_back", "insert", "emplace",
    "erase", "clear", "reset", "release", "resize", "reserve",
    "assign", "swap", "push", "pop", "push_front", "pop_front",
}


def run(model, config):
    from . import Finding
    findings = []
    for path, sf in model.files.items():
        if not path.startswith("src/"):
            continue
        toks = sf.tokens
        for op, close in common.check_macro_extents(toks):
            macro = toks[op - 1].text
            for k in range(op + 1, close):
                t = toks[k]
                prev = toks[k - 1]
                nxt = toks[k + 1] if k + 1 < close else None
                if t.kind == "punct" and t.text in _ASSIGN_OPS:
                    # `=` inside a lambda intro `[=]` is a capture.
                    if t.text == "=" and prev.text == "[" \
                            and nxt is not None and nxt.text == "]":
                        continue
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"assignment ('{t.text}') inside {macro}: the "
                        f"argument is not evaluated in release "
                        f"builds; hoist the side effect out"))
                elif t.kind == "punct" and t.text in ("++", "--"):
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"'{t.text}' inside {macro}: the argument is "
                        f"not evaluated in release builds; hoist the "
                        f"side effect out"))
                elif t.kind == "id" and t.text in _MUTATING_MEMBERS \
                        and prev.text in (".", "->") \
                        and nxt is not None and nxt.text == "(":
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"mutating call (.{t.text}()) inside {macro}:"
                        f" the argument is not evaluated in release "
                        f"builds; hoist the side effect out"))
    return findings
