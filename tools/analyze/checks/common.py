"""Shared helpers for gippr-analyze checks: call-graph closure and
body-token scanning that understands the repo's check macros."""

from .. import model as M

#: Invariant macros whose argument compiles out in release builds.
CHECK_MACROS = {"GIPPR_CHECK", "GIPPR_DCHECK"}


def check_macro_extents(toks):
    """[(open, close)] token index ranges of every CHECK_MACROS(...)
    argument list in @p toks (a tuple/list of tokens)."""
    extents = []
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in CHECK_MACROS \
                and i + 1 < len(toks) and toks[i + 1].text == "(":
            extents.append((i + 1, M.match_paren(toks, i + 1)))
    return extents


def outside_check_macros(toks):
    """Indices of @p toks not inside a check-macro argument: the
    macro body is compiled out (or aborts the process), so its
    argument never executes on the measured path."""
    extents = check_macro_extents(toks)
    out = []
    for i in range(len(toks)):
        if any(a <= i <= b for a, b in extents):
            continue
        out.append(i)
    return out


def reachable(model, roots):
    """Transitive closure of repo-defined functions from @p roots
    (a set of Function definitions), resolving calls by name with
    same-class preference (Model.resolve)."""
    seen = {}
    work = list(roots)
    for f in work:
        seen[id(f)] = f
    while work:
        fn = work.pop()
        for call in fn.calls:
            for target in model.resolve(fn, call):
                if id(target) not in seen:
                    seen[id(target)] = target
                    work.append(target)
    return list(seen.values())


def defs_for_symbols(model, symbols):
    """Function definitions whose qualified name is in @p symbols.
    A symbol with no definition (declaration-only in the analyzed
    set) resolves to every same-named definition as a fallback."""
    out = []
    for f in model.definitions():
        if f.qname in symbols or f.name in symbols:
            out.append(f)
    return out
