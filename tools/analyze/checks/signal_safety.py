"""signal-safety: the shutdown handler calls only async-signal-safe
functions.

The crash-safety layer (src/robust, PR 5) hinges on the SIGINT/SIGTERM
handler doing nothing that can deadlock or corrupt state mid-signal:
no stdio (buffered, takes locks), no malloc (takes the heap lock —
the classic checkpoint-corrupting deadlock), no C++ streams.  This
check finds every function installed as a signal handler (assigned to
a .sa_handler / .sa_sigaction field or registered via signal()/
sigaction()) and walks its transitive call graph: every live call
(GIPPR_CHECK arguments are dead code in release and abort anyway)
must be a repo function that is itself clean, or a member of the
POSIX async-signal-safe set.

The walk prunes at the allowlist BEFORE resolving names into the
repo: `::write(2, ...)` is the syscall, never some class's write()
method — otherwise one global-namespace call would drag half the
codebase into the "reachable from a handler" set.
"""

from . import common
from .. import model as M

CHECK_ID = "signal-safety"
DESCRIPTION = ("signal handlers may only reach async-signal-safe "
               "functions")

#: POSIX.1-2017 async-signal-safe functions this codebase could
#: plausibly reach (subset of the full table, extended on demand).
ASYNC_SIGNAL_SAFE = {
    "_exit", "_Exit", "abort", "accept", "alarm", "bind", "close",
    "connect", "dup", "dup2", "fcntl", "fdatasync", "fork", "fstat",
    "fsync", "getpid", "getppid", "kill", "link", "listen", "lseek",
    "mkdir", "open", "pause", "pipe", "poll", "pread", "pwrite",
    "raise", "read", "recv", "rename", "rmdir", "send", "sigaction",
    "sigaddset", "sigdelset", "sigemptyset", "sigfillset",
    "sigprocmask", "signal", "sleep", "socket", "stat", "symlink",
    "time", "umask", "uname", "unlink", "wait", "waitpid", "write",
}

#: Compiler-internal or intrinsic prefixes that lower to plain code.
_INTRINSIC_PREFIXES = ("__builtin", "_mm", "__atomic", "__sync")


def handler_names(model):
    """Simple names of functions installed as signal handlers."""
    names = set()
    for sf in model.files.values():
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            # sa.sa_handler = name; / sa.sa_sigaction = name;
            if t.kind == "id" \
                    and t.text in ("sa_handler", "sa_sigaction") \
                    and i + 2 < n and toks[i + 1].text == "=" \
                    and toks[i + 2].kind == "id":
                names.add(toks[i + 2].text)
            # signal(SIG..., name) / std::signal(SIG..., name)
            if t.kind == "id" and t.text == "signal" and i + 1 < n \
                    and toks[i + 1].text == "(":
                close = M.match_paren(toks, i + 1)
                depth = 0
                for k in range(i + 2, close):
                    x = toks[k].text
                    if x in "([{":
                        depth += 1
                    elif x in ")]}":
                        depth -= 1
                    elif depth == 0 and x == "," and k + 1 < close \
                            and toks[k + 1].kind == "id" \
                            and toks[k + 1].text not in ("SIG_IGN",
                                                         "SIG_DFL"):
                        names.add(toks[k + 1].text)
    return names


def _live_calls(fn):
    """Call sites outside check-macro arguments."""
    keep = common.outside_check_macros(fn.body)
    return M.collect_calls([fn.body[i] for i in keep])


def run(model, config):
    from . import Finding
    findings = []
    handlers = handler_names(model)
    if not handlers:
        return findings
    work = [f for f in model.definitions()
            if f.name in handlers or f.qname in handlers]
    seen = {id(f) for f in work}
    while work:
        fn = work.pop()
        for call in _live_calls(fn):
            if call.name in ASYNC_SIGNAL_SAFE \
                    and call.receiver != "member":
                continue
            if call.name.startswith(_INTRINSIC_PREFIXES):
                continue
            targets = model.resolve(fn, call)
            if targets:
                for t in targets:
                    if id(t) not in seen:
                        seen.add(id(t))
                        work.append(t)
                continue
            findings.append(Finding(
                CHECK_ID, fn.file, call.line,
                f"{fn.qname} (reachable from a signal handler) calls "
                f"'{call.name}', which is not async-signal-safe"))
    return findings
