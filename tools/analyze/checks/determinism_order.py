"""determinism-order: no iteration order leaks from hash containers.

Replay results must be bit-identical across runs and build modes
(ROADMAP: the scalar-vs-fast oracles, checkpoint --resume, CI
byte-compares).  Two C++ idioms silently break that:

  * iterating a std::unordered_* container — bucket order depends on
    libstdc++ version, insertion history, and (for pointer keys) ASLR;
  * ordering by raw pointer value — `std::sort` over pointers or a
    comparator that compares the pointers themselves orders by
    allocator layout.

Both are flagged in the result-affecting modules (src/core, src/sim,
src/ga, src/policies by default).  Lookups (.find/.count/operator[])
on unordered containers stay legal — only ordering escapes are not.
"""

CHECK_ID = "determinism-order"
DESCRIPTION = ("iteration over std::unordered_* or pointer-value "
               "ordering in result-affecting modules")

_UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset"}
_ITER_HEADS = {"begin", "cbegin", "rbegin", "crbegin"}
_SORT_HEADS = {"sort", "stable_sort", "partial_sort", "nth_element",
               "min_element", "max_element", "minmax_element"}


def _declared_names(toks, type_names, pointer_element=False):
    """Names declared in @p toks with a type in @p type_names; when
    @p pointer_element, only container types whose template argument
    list contains a '*' (e.g. std::vector<Node *>)."""
    from .. import model as M
    names = set()
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in type_names and i + 1 < n \
                and toks[i + 1].text == "<":
            close = M.match_paren(toks, i + 1)
            if pointer_element:
                inner = toks[i + 2:close]
                if not any(x.text == "*" for x in inner):
                    i = close + 1
                    continue
            j = close + 1
            # Skip refs/pointers/cv in the declarator.
            while j < n and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "id" \
                    and toks[j].text not in M.KEYWORDS:
                names.add(toks[j].text)
            i = close + 1
            continue
        i += 1
    return names


def _expr_names(toks, lo, hi):
    return {t.text for t in toks[lo:hi] if t.kind == "id"}


def run(model, config):
    from .. import model as M
    from . import Finding
    findings = []
    scope = config.get("determinism_scope",
                       ("src/core/", "src/sim/", "src/ga/",
                        "src/policies/"))
    for path, sf in model.files.items():
        if not path.startswith(tuple(scope)):
            continue
        toks = sf.tokens
        unordered = _declared_names(toks, _UNORDERED)
        ptr_containers = _declared_names(
            toks, {"vector", "array", "deque", "span"},
            pointer_element=True)
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i]
            # for ( ... : <expr referencing an unordered name> )
            if t.kind == "id" and t.text == "for" and i + 1 < n \
                    and toks[i + 1].text == "(":
                close = M.match_paren(toks, i + 1)
                colon = None
                depth = 0
                for k in range(i + 2, close):
                    x = toks[k].text
                    if x in "([{<":
                        depth += 1
                    elif x in ")]}>":
                        depth -= 1
                    elif depth == 0 and x == ":" \
                            and toks[k].kind == "punct":
                        colon = k
                        break
                if colon is not None:
                    hits = _expr_names(toks, colon + 1, close) \
                        & unordered
                    for name in sorted(hits):
                        findings.append(Finding(
                            CHECK_ID, path, t.line,
                            f"range-for over unordered container "
                            f"'{name}': bucket order is not "
                            f"deterministic; iterate a sorted copy or "
                            f"switch to an ordered container"))
                i = i + 2
                continue
            # name.begin() / name->cbegin() on an unordered name, and
            # std::begin(name).
            if t.kind == "id" and t.text in _ITER_HEADS \
                    and i + 1 < n and toks[i + 1].text == "(":
                prev = toks[i - 1].text if i > 0 else ""
                if prev in (".", "->") and i >= 2 \
                        and toks[i - 2].text in unordered:
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"iterator over unordered container "
                        f"'{toks[i - 2].text}' "
                        f"({toks[i - 2].text}.{t.text}()): bucket "
                        f"order is not deterministic"))
                elif prev == "::" and i + 2 < n \
                        and toks[i + 2].text in unordered:
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"std::{t.text} over unordered container "
                        f"'{toks[i + 2].text}': bucket order is not "
                        f"deterministic"))
            # std::sort(first, last[, cmp]) over pointer elements.
            if t.kind == "id" and t.text in _SORT_HEADS \
                    and i + 1 < n and toks[i + 1].text == "(":
                close = M.match_paren(toks, i + 1)
                arg_names = _expr_names(toks, i + 2, close)
                hit = sorted(arg_names & ptr_containers)
                has_cmp = _arg_count(toks, i + 1, close) >= 3
                if hit and not has_cmp:
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"std::{t.text} over pointer container "
                        f"'{hit[0]}' without a comparator orders by "
                        f"address (ASLR/allocator dependent); compare "
                        f"a stable field instead"))
                if has_cmp:
                    findings.extend(_pointer_comparator(
                        toks, i + 1, close, path))
            i += 1
    return findings


def _arg_count(toks, op, close):
    depth = 0
    args = 1
    empty = True
    for k in range(op + 1, close):
        x = toks[k].text
        if x in "([{":
            depth += 1
        elif x in ")]}":
            depth -= 1
        elif depth == 0 and x == ",":
            args += 1
        empty = False
    return 0 if empty else args


def _pointer_comparator(toks, op, close, path):
    """Flag a lambda comparator whose parameters are pointers and
    whose body compares the parameters directly."""
    from .. import model as M
    from . import Finding
    out = []
    k = op + 1
    while k < close:
        if toks[k].text == "[" and k + 1 < close:
            cap_close = M.match_paren(toks, k)
            if cap_close + 1 < close and toks[cap_close + 1].text == "(":
                pclose = M.match_paren(toks, cap_close + 1)
                params = toks[cap_close + 2:pclose]
                # pointer params: `Type *a` patterns.
                names = []
                for j in range(len(params) - 1):
                    if params[j].text == "*" \
                            and params[j + 1].kind == "id":
                        names.append(params[j + 1].text)
                if len(names) >= 2 and pclose + 1 < close \
                        and toks[pclose + 1].text == "{":
                    bclose = M.match_paren(toks, pclose + 1)
                    body = toks[pclose + 2:bclose]
                    for j in range(1, len(body) - 1):
                        if body[j].text in ("<", ">", "<=", ">=") \
                                and body[j - 1].text in names \
                                and body[j + 1].text in names:
                            out.append(Finding(
                                CHECK_ID, path, body[j].line,
                                "comparator orders by raw pointer "
                                "value (ASLR/allocator dependent); "
                                "compare a stable field instead"))
                    k = bclose
        k += 1
    return out
