"""atomic-io-only: persistent writes flow through writeFileAtomic.

The crash-safety guarantees (PR 5: kill-at-any-point + resume,
fault-injection sweep with no torn files) hold only while every
persistent artifact is produced by robust::writeFileAtomic's
temp + fsync + rename + dir-fsync sequence.  A raw std::ofstream or
write-mode fopen() anywhere else reintroduces torn-file windows that
the fault injector cannot see.  Direct file-writing APIs are
therefore banned in src/ outside src/robust/:

  * std::ofstream / std::fstream construction or .open();
  * fopen()/freopen() with a write or append mode — a non-literal
    mode argument is flagged too, since the analyzer cannot prove it
    read-only (baseline it with a justification if it is);
  * ::open() with O_WRONLY/O_RDWR/O_CREAT/O_TRUNC/O_APPEND, and
    creat().

Read-side APIs (ifstream, fopen "rb", O_RDONLY open) stay legal.
"""

CHECK_ID = "atomic-io-only"
DESCRIPTION = ("direct file writes outside src/robust; use "
               "robust::writeFileAtomic")

_WRITE_OPEN_FLAGS = {"O_WRONLY", "O_RDWR", "O_CREAT", "O_TRUNC",
                     "O_APPEND"}


def run(model, config):
    from .. import model as M
    from . import Finding
    findings = []
    scope = config.get("atomic_io_scope", "src/")
    exempt = config.get("atomic_io_exempt", ("src/robust/",))
    for path, sf in model.files.items():
        if not path.startswith(scope) or path.startswith(tuple(exempt)):
            continue
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in ("ofstream", "fstream"):
                findings.append(Finding(
                    CHECK_ID, path, t.line,
                    f"std::{t.text} writes in place; persistent "
                    f"artifacts must go through "
                    f"robust::writeFileAtomic"))
                continue
            if t.text in ("fopen", "freopen") and i + 1 < n \
                    and toks[i + 1].text == "(":
                close = M.match_paren(toks, i + 1)
                mode = _mode_argument(toks, i + 1, close)
                if mode is None:
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"{t.text}() with a non-literal mode: cannot "
                        f"prove it read-only; writes must go through "
                        f"robust::writeFileAtomic"))
                elif any(c in mode for c in "wa+"):
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"{t.text}(..., \"{mode}\") writes in place; "
                        f"use robust::writeFileAtomic"))
                continue
            if t.text in ("open", "open64", "creat") and i + 1 < n \
                    and toks[i + 1].text == "(" \
                    and (i == 0 or toks[i - 1].text
                         not in (".", "->")):
                if t.text == "creat":
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        "creat() truncates in place; use "
                        "robust::writeFileAtomic"))
                    continue
                close = M.match_paren(toks, i + 1)
                flags = {x.text for x in toks[i + 2:close]
                         if x.kind == "id"}
                hit = sorted(flags & _WRITE_OPEN_FLAGS)
                if hit:
                    findings.append(Finding(
                        CHECK_ID, path, t.line,
                        f"open() with {'|'.join(hit)} writes in "
                        f"place; use robust::writeFileAtomic"))
    return findings


def _mode_argument(toks, op, close):
    """The second top-level argument of fopen when it is a string
    literal, else None."""
    depth = 0
    commas = []
    for k in range(op + 1, close):
        x = toks[k].text
        if x in "([{":
            depth += 1
        elif x in ")]}":
            depth -= 1
        elif depth == 0 and x == ",":
            commas.append(k)
    if not commas:
        return None
    lo = commas[0] + 1
    hi = commas[1] if len(commas) > 1 else close
    args = [toks[k] for k in range(lo, hi)]
    if len(args) == 1 and args[0].kind == "str":
        return args[0].text.strip('"')
    return None
