"""hot-path-purity: GIPPR_HOT functions stay allocation- and
side-channel-free, transitively.

The fastpath SoA kernels and the multicore shared-model access path
are the throughput budget of the whole system (ROADMAP's 2x GA
target); one stray heap allocation, virtual dispatch, lock, throw, or
stream write in them costs more than any micro-optimization saves and
is invisible to tests that only compare outcomes.  Functions annotated
GIPPR_HOT (src/util/hot.hh) and everything they transitively call
inside the repo must be free of:

  * heap allocation — new/delete, malloc-family, make_unique/shared,
    growing containers (push_back/resize/...), constructing
    std::string/std::vector/std::ostringstream locals;
  * virtual dispatch — member calls whose name is only ever declared
    virtual in the repo;
  * exceptions — throw / try;
  * locks — mutexes, lock_guard/unique_lock/scoped_lock, atomics are
    fine;
  * I/O — stdio, iostreams, syscall wrappers.

GIPPR_CHECK / GIPPR_DCHECK arguments are exempt: they compile out in
release builds, and when they do fire the process is aborting anyway.
"""

from . import common

CHECK_ID = "hot-path-purity"
DESCRIPTION = ("GIPPR_HOT functions must be transitively free of "
               "allocation, virtual dispatch, exceptions, locks, I/O")

_ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "free", "strdup", "strndup",
    "posix_memalign", "aligned_alloc", "make_unique", "make_shared",
    "to_string", "stoi", "stoul", "stoull", "stod",
}
_ALLOC_MEMBERS = {
    "push_back", "emplace_back", "pop_back", "resize", "reserve",
    "insert", "emplace", "emplace_hint", "append", "assign",
    "shrink_to_fit", "push_front", "emplace_front",
}
_ALLOC_TYPES = {
    "vector", "string", "deque", "list", "map", "set",
    "unordered_map", "unordered_set", "multimap", "multiset",
    "ostringstream", "stringstream", "istringstream", "basic_string",
}
_LOCK_NAMES = {
    "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    "condition_variable",
}
_LOCK_CALLS = {
    "pthread_mutex_lock", "pthread_mutex_unlock", "pthread_rwlock_rdlock",
    "pthread_rwlock_wrlock",
}
_IO_CALLS = {
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
    "puts", "putchar", "putc", "fputc", "fputs", "fwrite", "fread",
    "fopen", "fclose", "fflush", "fseek", "ftell", "fscanf", "scanf",
    "getline", "getchar",
}
_IO_SYSCALLS = {"write", "read", "open", "close", "pread", "pwrite",
                "fsync", "fdatasync"}
_IO_NAMES = {"cout", "cerr", "clog", "cin", "ofstream", "ifstream",
             "fstream", "FILE"}


def violations_in_body(fn, virtual_only):
    """(line, why) purity violations in @p fn's body tokens."""
    toks = fn.body
    out = []
    keep = common.outside_check_macros(toks)
    keepset = set(keep)
    for i in keep:
        t = toks[i]
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prev = toks[i - 1].text if i > 0 else ""
        if t.kind != "id":
            continue
        if t.text in ("new", "delete"):
            out.append((t.line, f"heap {t.text}"))
        elif t.text in ("throw", "try"):
            out.append((t.line, f"exceptions ({t.text})"))
        elif t.text in _ALLOC_TYPES and prev != "const" \
                and nxt in ("<", "(", "{"):
            # Constructing an allocating type (params land in the
            # head, so a body mention with <...> / (...) is a local
            # or a temporary).
            out.append((t.line,
                        f"allocating type std::{t.text} constructed"))
        elif t.text in _LOCK_NAMES:
            out.append((t.line, f"lock ({t.text})"))
        elif nxt == "(" or (nxt == "<" and t.text in _ALLOC_CALLS):
            if t.text in _ALLOC_CALLS:
                out.append((t.line, f"allocation ({t.text})"))
            elif t.text in _LOCK_CALLS:
                out.append((t.line, f"lock ({t.text})"))
            elif t.text in _IO_CALLS:
                out.append((t.line, f"I/O ({t.text})"))
            elif t.text in _IO_SYSCALLS and prev not in (".", "->"):
                out.append((t.line, f"I/O syscall ({t.text})"))
            elif prev in (".", "->") and t.text in _ALLOC_MEMBERS:
                out.append((t.line,
                            f"growing container call (.{t.text})"))
            elif prev in (".", "->") and t.text == "lock":
                out.append((t.line, "lock (.lock())"))
            elif prev in (".", "->") and t.text in virtual_only \
                    and i - 2 in keepset \
                    and toks[i - 2].text != "this":
                out.append((t.line,
                            f"virtual dispatch (.{t.text}())"))
        elif t.text in _IO_NAMES:
            out.append((t.line, f"I/O ({t.text})"))
    return out


def run(model, config):
    from . import Finding
    findings = []
    hot = model.hot_symbols()
    if not hot:
        if config.get("require_hot", False):
            findings.append(Finding(
                CHECK_ID, config.get("anchor_file", "src/util/hot.hh"),
                1, "no GIPPR_HOT annotations found anywhere; the hot "
                   "kernels must be annotated"))
        return findings
    roots = common.defs_for_symbols(model, hot)
    virtual_only = model.virtual_only_names()
    for fn in common.reachable(model, roots):
        root_note = "" if fn.qname in hot or fn.name in hot \
            else " (reached from a GIPPR_HOT function)"
        for line, why in violations_in_body(fn, virtual_only):
            findings.append(Finding(
                CHECK_ID, fn.file, line,
                f"{fn.qname}{root_note}: {why} on the hot path"))
    return findings
