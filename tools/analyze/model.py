"""Semantic model of the C++ sources gippr-analyze checks run over.

The model is deliberately engine-agnostic: a backend (the built-in
lexer below, or the optional libclang backend in clangast.py) produces
the same dataclasses — token streams per file, function definitions
with body extents, declarations, a name-resolved call graph, and the
repo-wide sets of virtual method names and GIPPR_HOT-annotated
symbols.  The checks consume only this model, so they behave
identically under either backend; the libclang backend merely sharpens
extraction where real type information helps.

The built-in backend is a hand-rolled lexer plus a scope-tracking
recognizer for namespace / class / function braces.  It is not a C++
parser — it does not need to be: the five invariants gippr-analyze
encodes (see run.py) are all expressible over declarations, call
sites, and token neighborhoods, which the recognizer recovers reliably
for this codebase's style (enforced separately by tools/lint.py and
clang-format).
"""

import bisect
import dataclasses
import pathlib
import re

# ---------------------------------------------------------------------------
# Tokens


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str  # "id", "num", "str", "chr", "punct", "pp"
    text: str
    line: int


# Longest-match-first multi-character operators the checks care about.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
]

_ID_START = re.compile(r"[A-Za-z_]")
_ID_BODY = re.compile(r"[A-Za-z0-9_]")

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof",
    "alignas", "new", "delete", "throw", "try", "catch", "const",
    "constexpr", "consteval", "constinit", "static", "inline",
    "extern", "mutable", "volatile", "register", "thread_local",
    "typedef", "using", "namespace", "class", "struct", "union",
    "enum", "template", "typename", "public", "private", "protected",
    "virtual", "override", "final", "noexcept", "operator", "friend",
    "explicit", "auto", "decltype", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "static_assert", "co_await",
    "co_yield", "co_return", "requires", "concept", "export", "this",
    "nullptr", "true", "false", "and", "or", "not",
}

#: Keyword-like call heads that must never be treated as call sites.
#: The check macros are modeled separately (checks/common.py) — their
#: argument compiles out, so it is not a live call.
NOT_CALLS = KEYWORDS | {
    "assert", "defined", "__builtin_expect", "__builtin_prefetch",
    "__builtin_unreachable", "__attribute__", "alignof", "offsetof",
    "GIPPR_CHECK", "GIPPR_DCHECK",
}


def tokenize(text):
    """Lex @p text into Tokens; comments vanish, strings survive as
    single tokens (checks inspect fopen mode literals), preprocessor
    directives collapse to one "pp" token per (continued) line."""
    toks = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and at_line_start:
            start = i
            start_line = line
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            toks.append(Token("pp", text[start:i], start_line))
            continue
        at_line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "R" and text[i:i + 2] == 'R"':
            # Raw string: R"delim( ... )delim"
            m = re.match(r'R"([^()\\ ]*)\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i + m.end())
                end = n if end < 0 else end + len(m.group(1)) + 2
                toks.append(Token("str", text[i:end], line))
                line += text.count("\n", i, end)
                i = end
                continue
        if c in "\"'":
            start = i
            i += 1
            while i < n and text[i] != c:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    line += 1
                i += 1
            i += 1
            toks.append(Token("str" if c == '"' else "chr",
                              text[start:i], line))
            continue
        if _ID_START.match(c):
            start = i
            while i < n and _ID_BODY.match(text[i]):
                i += 1
            toks.append(Token("id", text[start:i], line))
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < n and (text[i].isalnum() or text[i] in "._'"
                             or (text[i] in "+-" and text[i - 1] in "eEpP")):
                i += 1
            toks.append(Token("num", text[start:i], line))
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Token("punct", c, line))
            i += 1
    return toks


def match_paren(toks, i):
    """Index of the token closing the group opened at toks[i]."""
    opener = toks[i].text
    closer = {"(": ")", "[": "]", "{": "}", "<": ">"}[opener]
    depth = 0
    j = i
    n = len(toks)
    while j < n:
        t = toks[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j
        j += 1
    return n - 1


# ---------------------------------------------------------------------------
# Model dataclasses


@dataclasses.dataclass
class CallSite:
    name: str       # simple name of the callee
    qualifier: str  # "Class" for Class::name, "" otherwise
    receiver: str   # "free", "member" (./->) or "qualified" (::name)
    line: int


@dataclasses.dataclass
class Function:
    name: str          # simple name
    cls: str           # enclosing/qualifying class, "" for free
    file: str          # repo-relative path
    line: int          # line of the definition (or declaration)
    head: tuple = ()   # tokens of the declaration head
    body: tuple = ()   # tokens of the body, () for pure declarations
    calls: tuple = ()  # CallSites found in the body
    hot: bool = False  # GIPPR_HOT appeared in the head
    virtual: bool = False
    has_body: bool = False

    @property
    def qname(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclasses.dataclass
class SourceFile:
    path: str          # repo-relative (virtual for fixtures)
    tokens: list = dataclasses.field(default_factory=list)
    functions: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Model:
    files: dict = dataclasses.field(default_factory=dict)  # path -> SourceFile
    _ident_cache: dict = dataclasses.field(default_factory=dict)

    def _file_idents(self, path):
        """Identifiers visible from @p path: its own tokens plus its
        companion header/source (member types live in the .hh while
        the calls live in the .cc)."""
        if path not in self._ident_cache:
            idents = set()
            companions = [path]
            if path.endswith(".cc"):
                companions.append(path[:-3] + ".hh")
            elif path.endswith(".hh"):
                companions.append(path[:-3] + ".cc")
            for p in companions:
                sf = self.files.get(p)
                if sf:
                    idents |= {t.text for t in sf.tokens
                               if t.kind == "id"}
            self._ident_cache[path] = idents
        return self._ident_cache[path]

    def functions(self):
        for sf in self.files.values():
            yield from sf.functions

    def definitions(self):
        return [f for f in self.functions() if f.has_body]

    def hot_symbols(self):
        """Qualified names carrying GIPPR_HOT on any decl or def."""
        return {f.qname for f in self.functions() if f.hot}

    def virtual_only_names(self):
        """Simple method names declared virtual somewhere and never as
        a non-virtual member — the safe set for flagging `x->name()`
        as virtual dispatch without type information."""
        virt, nonvirt = set(), set()
        for f in self.functions():
            if not f.cls:
                continue
            (virt if f.virtual else nonvirt).add(f.name)
        return virt - nonvirt

    def resolve(self, caller, call):
        """Candidate definitions for @p call from @p caller.

        Same-class members win over global name matches: an
        unqualified or member call from C::f to a name C also defines
        binds to C's member, which is both the common case and the one
        that keeps name collisions across classes from poisoning the
        transitive closure.
        """
        if call.qualifier:
            exact = [f for f in self.definitions()
                     if f.name == call.name and f.cls == call.qualifier]
            if exact:
                return exact
            # The qualifier may be a namespace (fastpath::, robust::):
            # those qualify free functions, not class members.
            return [f for f in self.definitions()
                    if f.name == call.name and not f.cls]
        if call.receiver == "qualified":
            # `::name(...)` — the global namespace: only free repo
            # functions can match (a bare `::write` is the syscall,
            # not some class's write() method).
            return [f for f in self.definitions()
                    if f.name == call.name and not f.cls]
        cands = [f for f in self.definitions() if f.name == call.name]
        if caller.cls:
            own = [f for f in cands if f.cls == caller.cls]
            if own:
                return own
        if call.receiver == "free":
            free = [f for f in cands if not f.cls]
            if free:
                return free
        if call.receiver == "member":
            # Cross-class member call: the receiver's static type must
            # be named somewhere in the caller's file or its companion
            # header.  A class that is never mentioned cannot be the
            # type of a receiver here — `levels_.size()` on a
            # std::vector must not bind to some repo class's size().
            # An empty result means the receiver is a std/external
            # type: report the call as unresolved, not as every
            # same-named method in the repo.
            idents = self._file_idents(caller.file)
            return [f for f in cands if not f.cls or f.cls in idents]
        return cands


# ---------------------------------------------------------------------------
# Built-in extraction backend

_SCOPE_KEYWORDS = {"class", "struct", "union"}
_BLOCK_HEADS = {"if", "for", "while", "switch", "do", "else", "try",
                "catch"}


def _decl_groups(toks, lo, hi):
    """Split class/namespace-scope tokens [lo, hi) into declaration
    runs separated by top-level ';' (brace groups are handled by the
    caller, which never hands us a '{')."""
    groups = []
    start = lo
    depth = 0
    for i in range(lo, hi):
        t = toks[i].text
        if t in "([":
            depth += 1
        elif t in ")]":
            depth -= 1
        elif t == ";" and depth == 0:
            groups.append((start, i))
            start = i + 1
    if start < hi:
        groups.append((start, hi))
    return groups


def _find_param_list(toks, lo, hi):
    """Locate the parameter list of a function declarator in the
    head tokens [lo, hi): the last top-level '(...)' group that is
    immediately preceded by a name (identifier, operator-id, or a
    qualified chain) — skipping a constructor initializer list if one
    follows.  Returns (open, close, name, cls) or None."""
    # Truncate at a ctor-initializer ':' (a top-level ':' directly
    # after a ')'), so `Ctor() : a_(x)` resolves to Ctor's parens.
    depth = 0
    cut = hi
    prev_close = False
    for i in range(lo, hi):
        t = toks[i].text
        if t in "([":
            depth += 1
            prev_close = False
        elif t in ")]":
            depth -= 1
            prev_close = t == ")"
        elif depth == 0 and t == ":" and toks[i].kind == "punct" \
                and prev_close:
            cut = i
            break
        elif toks[i].kind != "pp":
            prev_close = False
    # Find the last top-level '(' group in [lo, cut).
    opens = []
    depth = 0
    i = lo
    while i < cut:
        t = toks[i].text
        if t == "(":
            if depth == 0:
                opens.append(i)
            depth += 1
        elif t == ")":
            depth -= 1
        i += 1
    for op in reversed(opens):
        close = match_paren(toks, op)
        if close >= cut:
            continue
        j = op - 1
        if j < lo:
            continue
        name = None
        cls = ""
        if toks[j].kind == "id" and toks[j].text not in KEYWORDS:
            name = toks[j].text
            # ~Name destructor / Class::name qualification.
            if j - 1 >= lo and toks[j - 1].text == "~":
                name = "~" + name
                j -= 1
            if j - 2 >= lo and toks[j - 1].text == "::" \
                    and toks[j - 2].kind == "id":
                cls = toks[j - 2].text
        elif toks[j].text in (")", "]", ">", "<", "=", "*", "&"):
            # operator(), operator[], operator<, operator=, ...
            k = j
            while k >= lo and toks[k].kind == "punct":
                if toks[k].text == "operator":
                    break
                k -= 1
            if k >= lo and toks[k].text == "operator":
                name = "operator" + "".join(
                    t.text for t in toks[k + 1:op])
                if k - 2 >= lo and toks[k - 1].text == "::" \
                        and toks[k - 2].kind == "id":
                    cls = toks[k - 2].text
        elif toks[j].kind == "id" and toks[j].text == "operator":
            name = "operator()"
        if name:
            return op, close, name, cls
    return None


def _check_macro_spans(toks, lo, hi):
    """Index ranges of GIPPR_CHECK/GIPPR_DCHECK argument lists: those
    tokens compile out in release builds, so nothing inside them is a
    live call for closure purposes."""
    spans = []
    for i in range(lo, hi):
        if toks[i].kind == "id" \
                and toks[i].text in ("GIPPR_CHECK", "GIPPR_DCHECK") \
                and i + 1 < hi and toks[i + 1].text == "(":
            spans.append((i + 1, match_paren(toks, i + 1)))
    return spans


def _collect_calls(toks, lo, hi):
    """Live call sites in the body token range [lo, hi)."""
    calls = []
    spans = _check_macro_spans(toks, lo, hi)
    i = lo
    while i < hi:
        if any(a <= i <= b for a, b in spans):
            i += 1
            continue
        t = toks[i]
        if t.kind != "id" or t.text in NOT_CALLS:
            i += 1
            continue
        j = i + 1
        # Template argument list between name and '(': name<...>(
        if j < hi and toks[j].text == "<":
            close = match_paren(toks, j)
            if close < hi and close - j <= 8 \
                    and close + 1 < hi and toks[close + 1].text == "(":
                j = close + 1
        if j >= hi or toks[j].text != "(":
            i += 1
            continue
        qualifier = ""
        receiver = "free"
        if i - 1 >= lo:
            p = toks[i - 1].text
            if p == "::":
                receiver = "qualified"
                if i - 2 >= lo and toks[i - 2].kind == "id":
                    qualifier = toks[i - 2].text
            elif p in (".", "->"):
                receiver = "member"
        calls.append(CallSite(t.text, qualifier, receiver, t.line))
        i = j
    return calls


def collect_calls(toks):
    """Public wrapper: call sites over a full token sequence."""
    return _collect_calls(toks, 0, len(toks))


def _parse_scope(toks, lo, hi, cls, sf, ns_depth):
    """Recursively walk a namespace/class scope, emitting Functions."""
    groups = []
    # First, split [lo, hi) at top-level braces into declaration text
    # runs and brace groups.  "Top level" means outside parentheses
    # and brackets too: `~uint64_t{0}` in a constructor initializer
    # must not open a scope.
    i = lo
    run_start = lo
    depth = 0
    while i < hi:
        t = toks[i].text
        if t in "([":
            depth += 1
            i += 1
        elif t in ")]":
            depth -= 1
            i += 1
        elif t == "{" and depth == 0:
            close = match_paren(toks, i)
            groups.append(("run", run_start, i))
            groups.append(("block", i, close + 1))
            i = close + 1
            run_start = i
        else:
            i += 1
    groups.append(("run", run_start, hi))

    pending = run_start = None
    # Re-walk pairing each block with the declaration run before it.
    decl_start = lo
    gi = 0
    while gi < len(groups):
        kind, a, b = groups[gi]
        if kind == "run":
            # Declarations ending in ';' inside the run.
            for s, e in _decl_groups(toks, a, b):
                _emit_declaration(toks, s, e, cls, sf)
            gi += 1
            continue
        # A block: classify by the declaration tokens before it.
        head_lo = a
        # Walk back through the preceding run to the last ';' (or the
        # run start) to get this block's head.
        prev_kind, pa, pb = groups[gi - 1]
        s = pa
        depth = 0
        for k in range(pa, pb):
            t = toks[k].text
            if t in "([":
                depth += 1
            elif t in ")]":
                depth -= 1
            elif depth == 0 and t == ";":
                s = k + 1
            elif depth == 0 and toks[k].kind == "id" \
                    and t in ("public", "private", "protected") \
                    and k + 1 < pb and toks[k + 1].text == ":":
                s = k + 2
        head = (s, pb)
        _classify_block(toks, head, a, b, cls, sf, ns_depth)
        gi += 1


def _head_texts(toks, lo, hi):
    return [toks[k].text for k in range(lo, hi) if toks[k].kind != "pp"]


def _classify_block(toks, head, blo, bhi, cls, sf, ns_depth):
    hlo, hhi = head
    texts = _head_texts(toks, hlo, hhi)
    if not texts:
        return
    if "namespace" in texts:
        _parse_scope(toks, blo + 1, bhi - 1, cls, sf, ns_depth + 1)
        return
    # enum class Foo { ... } — values, not a scope we model.
    if "enum" in texts:
        return
    # class/struct at top level of the head (not a return type like
    # `struct tm *f()` — those contain a '(' after the key).
    for key in _SCOPE_KEYWORDS:
        if key in texts:
            ki = texts.index(key)
            rest = texts[ki + 1:]
            if "(" not in rest:
                # Name = first identifier after the key.
                name = ""
                for k in range(hlo, hhi):
                    if toks[k].text == key:
                        for m in range(k + 1, hhi):
                            if toks[m].kind == "id" and \
                                    toks[m].text not in KEYWORDS:
                                name = toks[m].text
                                break
                            if toks[m].text in (":", "{"):
                                break
                        break
                _parse_scope(toks, blo + 1, bhi - 1, name or cls, sf,
                             ns_depth)
                return
    # Variable definition with brace init: `Type x = { ... }` or
    # lambdas assigned at scope — a top-level '=' before the block.
    depth = 0
    for k in range(hlo, hhi):
        t = toks[k].text
        if t in "([":
            depth += 1
        elif t in ")]":
            depth -= 1
        elif depth == 0 and t == "=":
            return
    pl = _find_param_list(toks, hlo, hhi)
    if pl is None:
        return
    op, close, name, qcls = pl
    fcls = qcls or cls
    head_toks = tuple(toks[hlo:hhi])
    body_toks = tuple(toks[blo:bhi])
    fn = Function(
        name=name,
        cls=fcls,
        file=sf.path,
        line=toks[hlo].line,
        head=head_toks,
        body=body_toks,
        calls=tuple(_collect_calls(toks, blo + 1, bhi - 1)),
        hot=any(t.text == "GIPPR_HOT" for t in head_toks),
        virtual=any(t.text == "virtual" for t in head_toks),
        has_body=True,
    )
    sf.functions.append(fn)


def _emit_declaration(toks, lo, hi, cls, sf):
    """Body-less declaration at class/namespace scope (prototype)."""
    texts = _head_texts(toks, lo, hi)
    if not texts or "(" not in texts:
        return
    if texts[0] in ("using", "typedef", "friend", "template"):
        # Pure `template <...>;`-style or alias declarations; real
        # templated definitions carry their body through the block
        # path instead.
        if texts[0] != "template" or ")" not in texts:
            return
    if "=" in _top_level_texts(toks, lo, hi):
        # `int x = f();` — variable, not a prototype.  (Pure-virtual
        # `= 0` is also fine to skip: the virtual bit still registers
        # below only if we parse it, so handle it first.)
        if not ("virtual" in texts and texts[-2:] == ["=", "0"]):
            return
    pl = _find_param_list(toks, lo, hi)
    if pl is None:
        return
    op, close, name, qcls = pl
    head_toks = tuple(toks[lo:hi])
    sf.functions.append(Function(
        name=name,
        cls=qcls or cls,
        file=sf.path,
        line=toks[lo].line,
        head=head_toks,
        hot=any(t.text == "GIPPR_HOT" for t in head_toks),
        virtual=any(t.text == "virtual" for t in head_toks),
        has_body=False,
    ))


def _top_level_texts(toks, lo, hi):
    out = []
    depth = 0
    for k in range(lo, hi):
        t = toks[k].text
        if t in "([":
            depth += 1
        elif t in ")]":
            depth -= 1
        elif depth == 0:
            out.append(t)
    return out


def parse_file(path, virtual_path=None):
    """Lex and extract one file into a SourceFile."""
    text = pathlib.Path(path).read_text(errors="replace")
    sf = SourceFile(path=virtual_path or str(path))
    sf.tokens = tokenize(text)
    _parse_scope(sf.tokens, 0, len(sf.tokens), "", sf, 0)
    return sf


def build_model(paths, virtual_paths=None):
    """Built-in backend entry: model for @p paths (repo-relative
    virtual names taken from @p virtual_paths when given)."""
    model = Model()
    for p in paths:
        vp = (virtual_paths or {}).get(str(p))
        sf = parse_file(p, vp)
        model.files[sf.path] = sf
    return model
